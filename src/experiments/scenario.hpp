// ScenarioBuilder: the paper's testbed (Fig. 2), generalized.
//
// Four ECDs, each with an integrated 6-port TSN switch. The switches form
// a full mesh (every remote clock-sync VM is exactly three links from the
// measurement VM, matching section III-A2's hop counts). Each ECD hosts
// two clock synchronization VMs with passthrough NICs on switch ports P0
// (c^x_1, the GM of gPTP domain x) and P1 (c^x_2, the redundant VM).
// External port configuration pins one spanning tree per domain rooted at
// the domain's GM; a measurement VLAN with static multicast forwarding
// provides the symmetric 3-link paths for the precision probe.
//
// Beyond the paper's testbed, the builder scales to 64+ ECDs:
//   - `topology` picks the switch graph (mesh / ring / tree, see
//     experiments::Topology); spanning trees, the measurement VLAN and
//     the unicast FDB all derive from shortest-path routing, and the
//     default mesh reproduces the legacy 4-ECD wiring byte for byte.
//   - `num_domains` caps the gPTP domain count below one-per-ECD (the
//     FTA aggregates one source per domain; 64 domains on 64 ECDs would
//     be quadratic traffic for no extra fault tolerance).
//   - `partitions` switches execution to the conservative-parallel
//     runtime (sim::PartitionRuntime): one region per ECD, `partitions`
//     worker shards. 0 keeps the serial single-queue path, unchanged.
//     Partitioned results are byte-identical for every partitions >= 1
//     and worker schedule (regions and boundary tie-break keys are fixed
//     by the model, not the shard count); they intentionally differ from
//     the serial path's numerics, which keeps its legacy RNG streams.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "experiments/topology.hpp"
#include "gptp/bridge.hpp"
#include "hv/ecd.hpp"
#include "measure/path_delay.hpp"
#include "measure/precision_probe.hpp"
#include "net/frame_pool.hpp"
#include "net/link.hpp"
#include "net/switch.hpp"
#include "obs/obs.hpp"
#include "sim/fast_forward.hpp"
#include "sim/partition.hpp"
#include "sim/simulation.hpp"
#include "sim/snapshot.hpp"

namespace tsn::experiments {

struct ScenarioConfig {
  std::uint64_t seed = 1;
  std::size_t num_ecds = 4;

  // Scale & execution (see the header comment).
  TopologyKind topology = TopologyKind::kMesh;
  /// gPTP domains (and mutually-synchronizing GMs); 0 = one per ECD.
  std::size_t num_domains = 0;
  /// Partitioned execution: worker shards for the conservative-parallel
  /// runtime; 0 = legacy serial event loop.
  std::size_t partitions = 0;

  // Clock models.
  double max_drift_ppm = 5.0;        // the literature value behind Gamma
  double wander_sigma_ppm = 0.002;
  double nic_ts_jitter_ns = 8.0;     // i210-class HW timestamping
  double initial_phase_range_ns = 50'000.0; // random initial PHC offsets

  // Network calibration (targets the paper's measured dmin/dmax).
  std::int64_t host_link_delay_ns = 600;
  double host_link_jitter_ns = 15.0;
  std::int64_t mesh_link_delay_ns = 1'900;
  double mesh_link_jitter_ns = 40.0;
  std::int64_t switch_residence_ns = 1'800;
  double switch_residence_jitter_ns = 80.0;

  // Protocol.
  std::int64_t sync_interval_ns = 125'000'000;

  // Multi-domain aggregation. The validity threshold sits just below the
  // paper's bound Pi (~12.6 us): a -24 us attacker splits the clocks into
  // camps 12 us from the median, so honest nodes exclude the offenders --
  // and with two offenders lose their aggregation quorum, losing
  // synchronization exactly as in Fig. 3a.
  double validity_threshold_ns = 10'000.0;
  double startup_threshold_ns = 2'000.0;
  int startup_consecutive = 8;
  core::AggregationMethod aggregation = core::AggregationMethod::kFta;
  int fta_f = 1;

  // CLOCK_SYNCTIME maintenance.
  std::int64_t synctime_period_ns = 125'000'000;
  bool synctime_feed_forward = false;

  // Precision measurement.
  measure::ProbeConfig probe;
  std::size_t measurement_ecd = 0; ///< hosts the measurement VM c^m_2

  /// Kernel version per GM VM (c^x_1), indexed modulo its size (so the
  /// 4-entry default covers any num_ecds).
  std::vector<std::string> gm_kernels = {"4.19.1", "4.19.1", "4.19.1", "4.19.1"};

  /// The paper's architecture mutually synchronizes the GM clocks through
  /// the FTA (after the startup phase). Setting this false reproduces the
  /// Kyriakakis et al. baseline instead: GMs free-run unsynchronized,
  /// only client VMs aggregate (and skip the startup phase, which that
  /// design lacks); the client VM maintains each node's CLOCK_SYNCTIME.
  bool gm_mutual_sync = true;
};

class Scenario {
 public:
  explicit Scenario(const ScenarioConfig& cfg);

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Boot all ECDs (cold start at the current simulation time).
  void start();

  /// The single serial Simulation. Serial mode only: a partitioned world
  /// has one Simulation per region; use run_to()/now_ns() to drive it and
  /// ecd(x).sim() for a region's clock.
  sim::Simulation& sim();
  const ScenarioConfig& config() const { return cfg_; }

  // -- Execution facade (both modes) --------------------------------------

  bool partitioned() const { return runtime_ != nullptr; }
  sim::PartitionRuntime* runtime() { return runtime_.get(); }
  /// Advance the world to `t_ns` (events exactly at t_ns execute).
  void run_to(std::int64_t t_ns);
  /// Common time at stage boundaries (serial: the simulation clock).
  std::int64_t now_ns() const;
  /// Events executed so far, summed over regions in partitioned mode.
  std::uint64_t events_executed() const;
  /// The Simulation cross-region controllers (fault injector, attacker
  /// schedules) should live on: region 0's in partitioned mode, the
  /// serial simulation otherwise.
  sim::Simulation& control_sim();

  std::size_t num_ecds() const { return ecds_.size(); }
  const Topology& topology() const { return topo_; }
  /// gPTP domains in this world (== num_ecds unless num_domains caps it).
  std::size_t domain_count() const;
  hv::Ecd& ecd(std::size_t x) { return *ecds_.at(x); }
  hv::ClockSyncVm& vm(std::size_t ecd_idx, std::size_t vm_idx) {
    return ecds_.at(ecd_idx)->vm(vm_idx);
  }
  hv::ClockSyncVm& gm_vm(std::size_t ecd_idx) { return vm(ecd_idx, 0); }
  net::Switch& ecd_switch(std::size_t x) { return *switches_.at(x); }
  gptp::TimeAwareBridge& bridge(std::size_t x) { return *bridges_.at(x); }
  /// Host link of VM `vm_idx` of ECD `ecd_idx` (VM NIC is end A, the
  /// switch port is end B). Always region-local; the attack library's
  /// delay injection targets these.
  net::Link& host_link(std::size_t ecd_idx, std::size_t vm_idx) {
    return *links_.at(ecd_idx * 2 + vm_idx);
  }
  measure::PrecisionProbe& probe() { return *probe_; }
  measure::PathDelayMeter& path_meter() { return *path_meter_; }
  hv::ClockSyncVm& measurement_vm() { return vm(cfg_.measurement_ecd, 1); }

  std::vector<hv::Ecd*> ecd_ptrs();
  /// Names of the probe's destination VMs (for gamma computation).
  std::vector<std::string> probe_destinations() const;
  std::string measurement_vm_name() const;

  /// Switch port of sw_x facing sw_y (adjacent switches; the name is
  /// historical -- it resolves through the topology's port map).
  std::size_t mesh_port(std::size_t x, std::size_t y) const;

  /// True once every running VM's coordinator reached the FTA phase.
  bool all_in_fta_phase();

  /// Max |PHC_a - PHC_b| over all GM clocks right now (true-time
  /// instrumentation, used by tests and sanity checks).
  double gm_clock_disagreement_ns();

  /// The scenario-wide metrics registry / trace ring every component of
  /// this world reports into. Single-threaded by construction (one world =
  /// one replica = one thread in the sweep runner). Serial mode only:
  /// partitioned worlds keep one registry/ring per region (see
  /// region_trace) and merge deterministically in metrics_snapshot().
  obs::MetricsRegistry& metrics();
  obs::TraceRing& trace();
  /// Region r's trace ring (partitioned mode; serial r must be 0 and
  /// returns the single ring). Records within one ring are in that
  /// region's deterministic execution order.
  obs::TraceRing& region_trace(std::size_t r);
  std::size_t region_count() const { return runtime_ ? runtime_->region_count() : 1; }

  // -- Snapshot / fast-forward (serial mode only) --------------------------

  /// Every persistent component of this world, in boot order (ECDs, then
  /// switches, bridges, links, probe). The PathDelayMeter is deliberately
  /// absent: it is calibration infrastructure whose sweeps block quiescence
  /// structurally while they run, and its results feed analysis, not the
  /// clocks.
  std::vector<sim::Persistent*> persist_targets();

  /// Copy-out / copy-in of the whole world (sim::take_snapshot over
  /// persist_targets()). Both throw in partitioned mode and when some
  /// in-flight event is unaccounted for (components_quiescent() fails).
  sim::SimSnapshot snapshot();
  void restore(const sim::SimSnapshot& snap);

  /// Advance the world (plain event simulation, millisecond probing)
  /// until every live queue entry is accounted for by a persistent
  /// component -- i.e. until snapshot() would succeed. Returns false if
  /// no component-quiescent instant appears within `max_wait_ns` (e.g. a
  /// PathDelayMeter sweep is still running). Serial mode only.
  bool run_to_quiescence(std::int64_t max_wait_ns = 2'000'000'000);

  /// Arm the fast-forward analytic mode: run_to() then crosses quiescent
  /// windows analytically (DESIGN.md §12). Call after start(); harnesses
  /// with scheduled faults/attacks must add barriers on fast_forward()
  /// so windows never cross an injection edge.
  void enable_fast_forward(const sim::FfConfig& cfg = {});
  sim::FfController* fast_forward() { return ff_.get(); }

  /// Model-level quiescence: every running VM locked in FTA steady state,
  /// monitor view consistent with VM liveness, no armed attacks or
  /// corruptions anywhere, probe idle. (The structural queue check is the
  /// FfController's; this is the injected model predicate.)
  bool model_quiescent();

  /// Registry snapshot plus the event-queue totals harvested as gauges
  /// ("sim.events_executed", "sim.events_scheduled", ...). Partitioned:
  /// region registries merged in region order; only scheduling totals
  /// that are invariant under the horizon protocol are included (wheel
  /// placement stats depend on drain timing and are omitted).
  obs::MetricsSnapshot metrics_snapshot();

 private:
  void build_ecds();
  void build_network();
  void build_bridges();
  void configure_measurement_vlan();
  void configure_data_fdb();
  void build_probe();
  sim::Simulation& sim_for(std::size_t ecd_idx);
  obs::ObsContext obs_for(std::size_t ecd_idx);
  /// Captures the analytic stepper's entry state (ensemble membership,
  /// per-clock residuals vs the aggregate) from the live model at park
  /// time, before the controller's drain lets the clocks smear apart on
  /// stale frequency trims.
  void analytic_prepare(std::int64_t park_ns);
  /// Analytic clock advance over [from_ns, to_ns] for the ff controller:
  /// steps the ensemble at the sync cadence, pulling every locked
  /// aggregating PHC so it keeps its at-park offset from the aggregate.
  void analytic_advance(std::int64_t from_ns, std::int64_t to_ns);
  std::optional<double> ff_aggregate_rel(std::int64_t t_ref);

  ScenarioConfig cfg_;
  Topology topo_;
  sim::Simulation sim_;
  /// Frame-pool counters at construction. The (serial) pool is
  /// thread-local and outlives scenarios, so only the per-scenario deltas
  /// of the monotonic counters (acquired/released) are deterministic
  /// across sweep replicas; absolute totals, high_water and chunk counts
  /// carry history from whatever ran on this thread before.
  net::FramePool::Stats pool_base_;
  /// Partitioned mode: one private pool per region, installed as the
  /// executing thread's FramePool::local() around that region's events by
  /// the runtime's scope hook. Declared before runtime_ and the
  /// components so every FrameRef (event closures in the region queues,
  /// ETF slots in ports) drops its buffer before the pools die.
  std::vector<std::unique_ptr<net::FramePool>> pools_;
  std::unique_ptr<sim::PartitionRuntime> runtime_;
  obs::Observability obs_; ///< must outlive the components holding handles
  std::vector<std::unique_ptr<obs::Observability>> obs_regions_;
  std::vector<std::unique_ptr<hv::Ecd>> ecds_;
  std::vector<std::unique_ptr<net::Switch>> switches_;
  std::vector<std::unique_ptr<gptp::TimeAwareBridge>> bridges_;
  std::vector<std::unique_ptr<net::Link>> links_;
  std::unique_ptr<measure::PrecisionProbe> probe_;
  std::unique_ptr<measure::PathDelayMeter> path_meter_;
  std::unique_ptr<sim::FfController> ff_;
  sim::FfConfig ff_cfg_;
  struct FfPull {
    time::PhcClock* phc;
    double residual_ns; ///< clock - aggregate at window park
  };
  struct {
    std::vector<time::PhcClock*> ensemble;
    std::vector<FfPull> pulls;
    bool armed = false; ///< prepare ran and found an aggregation quorum
  } ff_pull_;
};

} // namespace tsn::experiments
