#include "experiments/report.hpp"

#include <algorithm>
#include <cstdio>

#include "util/csv.hpp"
#include "util/str.hpp"

namespace tsn::experiments {
namespace {

void hr(char c = '-', int width = 78) {
  std::string line(width, c);
  std::printf("%s\n", line.c_str());
}

} // namespace

void print_comparison_table(const std::string& title, const std::vector<ComparisonRow>& rows) {
  std::printf("\n%s\n", title.c_str());
  hr('=');
  std::printf("%-34s %-16s %-16s %s\n", "metric", "paper", "measured", "note");
  hr();
  for (const auto& r : rows) {
    std::printf("%-34s %-16s %-16s %s\n", r.metric.c_str(), r.paper.c_str(), r.measured.c_str(),
                r.note.c_str());
  }
  hr();
}

void print_calibration(const ExperimentHarness::Calibration& cal, double paper_dmin_ns,
                       double paper_dmax_ns, double paper_pi_ns, double paper_gamma_ns) {
  print_comparison_table(
      "Calibration: path delays and precision bound (paper sec. III-A3)",
      {
          {"dmin (min node-to-node latency)", util::format("%.0fns", paper_dmin_ns),
           util::format("%.0fns", cal.dmin_ns), ""},
          {"dmax (max node-to-node latency)", util::format("%.0fns", paper_dmax_ns),
           util::format("%.0fns", cal.dmax_ns), ""},
          {"E = dmax - dmin", util::format("%.0fns", paper_dmax_ns - paper_dmin_ns),
           util::format("%.0fns", cal.bound.reading_error_ns), ""},
          {"Gamma = 2*rmax*S", "1250ns", util::format("%.0fns", cal.bound.drift_offset_ns),
           "rmax=5ppm, S=125ms"},
          {"Pi = u(N,f)*(E+Gamma)", util::format("%.2fus", paper_pi_ns / 1000.0),
           util::format("%.2fus", cal.bound.pi_ns / 1000.0), "u(4,1)=2"},
          {"gamma (measurement error)", util::format("%.0fns", paper_gamma_ns),
           util::format("%.0fns", cal.gamma_ns), "measurement VLAN paths"},
      });
}

double bound_holding_fraction(const util::TimeSeries& series, double pi_ns, double gamma_ns) {
  if (series.empty()) return 1.0;
  std::size_t ok = 0;
  for (const auto& p : series.points()) {
    if (p.value - gamma_ns <= pi_ns) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(series.points().size());
}

void print_precision_series(const util::TimeSeries& series, double pi_ns, double gamma_ns,
                            std::int64_t bucket_ns) {
  std::printf("\nMeasured clock synchronization precision Pi* "
              "(aggregated over %llds buckets)\n",
              static_cast<long long>(bucket_ns / 1'000'000'000));
  hr();
  std::printf("%-10s %12s %12s %12s  %s\n", "t", "avg[ns]", "min[ns]", "max[ns]", "");
  hr();
  for (const auto& b : series.aggregate(bucket_ns)) {
    const bool violated = (b.max - gamma_ns) > pi_ns;
    std::printf("%-10s %12.0f %12.0f %12.0f  %s\n", util::hms(b.bucket_start_ns).c_str(), b.avg,
                b.min, b.max, violated ? "<-- exceeds Pi+gamma" : "");
  }
  hr();
  const auto st = series.stats();
  std::printf("samples=%llu avg=%.0fns std=%.0fns min=%.0fns max=%.0fns\n",
              static_cast<unsigned long long>(st.count()), st.mean(), st.stddev(), st.min(),
              st.max());
  std::printf("bound: Pi=%.2fus gamma=%.2fus; eq.(3.3) holds for %.2f%% of samples\n",
              pi_ns / 1000.0, gamma_ns / 1000.0,
              100.0 * bound_holding_fraction(series, pi_ns, gamma_ns));
}

void print_precision_histogram(const util::TimeSeries& series, double bin_ns,
                               double range_hi_ns) {
  util::Histogram h(0.0, range_hi_ns, bin_ns);
  for (const auto& p : series.points()) h.add(p.value);
  std::printf("\nDistribution of measured clock synchronization precision (Fig. 4b)\n");
  hr();
  std::printf("%s", h.ascii(48).c_str());
  hr();
  const auto& st = h.stats();
  std::printf("avg = %.0fns, std = %.0fns, min = %.0fns, max = %.0fns\n", st.mean(), st.stddev(),
              st.min(), st.max());
}

void print_event_timeline(const EventLog& log, const util::TimeSeries& series, std::int64_t lo_ns,
                          std::int64_t hi_ns, double pi_ns, double gamma_ns) {
  std::printf("\nEvent timeline %s .. %s (Fig. 5 style)\n", util::hms(lo_ns).c_str(),
              util::hms(hi_ns).c_str());
  hr();
  const auto window = series.window(lo_ns, hi_ns);
  util::RunningStats st;
  for (const auto& p : window) st.add(p.value);
  std::printf("precision in window: avg=%.0fns max=%.0fns (Pi=%.2fus gamma=%.2fus)\n", st.mean(),
              st.max(), pi_ns / 1000.0, gamma_ns / 1000.0);
  hr();
  for (const auto& e : log.window(lo_ns, hi_ns)) {
    const char* marker = "·";
    switch (e.kind) {
      case EventKind::kVmFailure: marker = "v"; break;   // triangle in the paper
      case EventKind::kTakeover: marker = "*"; break;    // star
      case EventKind::kAppFault: marker = "x"; break;    // cross
      case EventKind::kVmReboot:
      case EventKind::kVmRecovery: marker = "^"; break;
      case EventKind::kAttack: marker = "!"; break;
      default: break;
    }
    std::printf("%s  %s %-14s %-8s %s\n", util::hms(e.t_ns).c_str(), marker, to_string(e.kind),
                e.subject.c_str(), e.detail.c_str());
  }
  hr();
}

void dump_series_csv(const util::TimeSeries& series, const std::string& path) {
  util::CsvWriter csv(path, {"t_ns", "precision_ns"});
  for (const auto& p : series.points()) {
    csv.row_numeric({static_cast<double>(p.t_ns), p.value});
  }
}

void dump_aggregated_csv(const util::TimeSeries& series, std::int64_t bucket_ns,
                         const std::string& path) {
  util::CsvWriter csv(path, {"bucket_start_ns", "avg_ns", "min_ns", "max_ns", "count"});
  for (const auto& b : series.aggregate(bucket_ns)) {
    csv.row_numeric({static_cast<double>(b.bucket_start_ns), b.avg, b.min, b.max,
                     static_cast<double>(b.count)});
  }
}

void dump_events_csv(const EventLog& log, const std::string& path) {
  util::CsvWriter csv(path, {"t_ns", "kind", "subject", "detail"});
  for (const auto& e : log.events()) {
    csv.row({std::to_string(e.t_ns), to_string(e.kind), e.subject, e.detail});
  }
}

std::map<std::string, std::string> scenario_kv(const ScenarioConfig& cfg) {
  std::map<std::string, std::string> kv;
  kv["num_ecds"] = std::to_string(cfg.num_ecds);
  kv["topology"] = topology_name(cfg.topology);
  kv["num_domains"] = std::to_string(cfg.num_domains);
  kv["partitions"] = std::to_string(cfg.partitions);
  kv["max_drift_ppm"] = util::format("%g", cfg.max_drift_ppm);
  kv["wander_sigma_ppm"] = util::format("%g", cfg.wander_sigma_ppm);
  kv["nic_ts_jitter_ns"] = util::format("%g", cfg.nic_ts_jitter_ns);
  kv["initial_phase_range_ns"] = util::format("%g", cfg.initial_phase_range_ns);
  kv["host_link_delay_ns"] = std::to_string(cfg.host_link_delay_ns);
  kv["mesh_link_delay_ns"] = std::to_string(cfg.mesh_link_delay_ns);
  kv["switch_residence_ns"] = std::to_string(cfg.switch_residence_ns);
  kv["sync_interval_ns"] = std::to_string(cfg.sync_interval_ns);
  kv["validity_threshold_ns"] = util::format("%g", cfg.validity_threshold_ns);
  kv["startup_threshold_ns"] = util::format("%g", cfg.startup_threshold_ns);
  kv["startup_consecutive"] = std::to_string(cfg.startup_consecutive);
  switch (cfg.aggregation) {
    case core::AggregationMethod::kFta: kv["aggregation"] = "fta"; break;
    case core::AggregationMethod::kMedian: kv["aggregation"] = "median"; break;
    case core::AggregationMethod::kMean: kv["aggregation"] = "mean"; break;
  }
  kv["fta_f"] = std::to_string(cfg.fta_f);
  kv["synctime_period_ns"] = std::to_string(cfg.synctime_period_ns);
  kv["synctime_feed_forward"] = cfg.synctime_feed_forward ? "1" : "0";
  kv["gm_mutual_sync"] = cfg.gm_mutual_sync ? "1" : "0";
  kv["measurement_ecd"] = std::to_string(cfg.measurement_ecd);
  return kv;
}

} // namespace tsn::experiments
