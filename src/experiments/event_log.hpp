// Typed experiment event log: the data behind the annotations of Fig. 5
// (VM failure triangles, takeover stars, application-fault crosses).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tsn::experiments {

enum class EventKind {
  kVmFailure,
  kVmReboot,
  kTakeover,
  kVmRecovery,
  kAppFault,      ///< tx_timeout / deadline_miss / sync_receipt_timeout
  kAttack,
  kValidityChange,
  kPhaseChange,
};

const char* to_string(EventKind kind);

struct ExperimentEvent {
  std::int64_t t_ns = 0;
  EventKind kind = EventKind::kAppFault;
  std::string subject; ///< VM / domain the event concerns
  std::string detail;
};

class EventLog {
 public:
  void record(std::int64_t t_ns, EventKind kind, std::string subject, std::string detail = {});

  const std::vector<ExperimentEvent>& events() const { return events_; }
  std::vector<ExperimentEvent> window(std::int64_t lo_ns, std::int64_t hi_ns) const;
  std::size_t count(EventKind kind) const;
  std::size_t count(EventKind kind, const std::string& subject) const;

 private:
  std::vector<ExperimentEvent> events_;
};

} // namespace tsn::experiments
