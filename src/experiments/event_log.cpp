#include "experiments/event_log.hpp"

namespace tsn::experiments {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kVmFailure: return "vm_failure";
    case EventKind::kVmReboot: return "vm_reboot";
    case EventKind::kTakeover: return "takeover";
    case EventKind::kVmRecovery: return "vm_recovery";
    case EventKind::kAppFault: return "app_fault";
    case EventKind::kAttack: return "attack";
    case EventKind::kValidityChange: return "validity_change";
    case EventKind::kPhaseChange: return "phase_change";
  }
  return "?";
}

void EventLog::record(std::int64_t t_ns, EventKind kind, std::string subject,
                      std::string detail) {
  events_.push_back({t_ns, kind, std::move(subject), std::move(detail)});
}

std::vector<ExperimentEvent> EventLog::window(std::int64_t lo_ns, std::int64_t hi_ns) const {
  std::vector<ExperimentEvent> out;
  for (const auto& e : events_) {
    if (e.t_ns >= lo_ns && e.t_ns < hi_ns) out.push_back(e);
  }
  return out;
}

std::size_t EventLog::count(EventKind kind) const {
  std::size_t n = 0;
  for (const auto& e : events_) n += (e.kind == kind) ? 1 : 0;
  return n;
}

std::size_t EventLog::count(EventKind kind, const std::string& subject) const {
  std::size_t n = 0;
  for (const auto& e : events_) n += (e.kind == kind && e.subject == subject) ? 1 : 0;
  return n;
}

} // namespace tsn::experiments
