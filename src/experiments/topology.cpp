#include "experiments/topology.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace tsn::experiments {

TopologyKind parse_topology(const std::string& name) {
  if (name == "mesh") return TopologyKind::kMesh;
  if (name == "ring") return TopologyKind::kRing;
  if (name == "tree") return TopologyKind::kTree;
  throw std::invalid_argument("unknown topology '" + name +
                              "' (expected mesh, ring or tree)");
}

const char* topology_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kMesh: return "mesh";
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kTree: return "tree";
  }
  return "?";
}

Topology Topology::build(TopologyKind kind, std::size_t n) {
  if (n < 2) throw std::invalid_argument("Topology: need >= 2 switches");
  Topology t;
  t.kind_ = kind;
  t.adj_.assign(n, {});
  auto link = [&t](std::size_t a, std::size_t b) {
    t.adj_[a].push_back(b);
    t.adj_[b].push_back(a);
  };
  switch (kind) {
    case TopologyKind::kMesh:
      for (std::size_t x = 0; x < n; ++x) {
        for (std::size_t y = x + 1; y < n; ++y) link(x, y);
      }
      break;
    case TopologyKind::kRing:
      for (std::size_t x = 0; x + 1 < n; ++x) link(x, x + 1);
      if (n > 2) link(0, n - 1); // n == 2 collapses to a single link
      break;
    case TopologyKind::kTree:
      for (std::size_t x = 1; x < n; ++x) link((x - 1) / 2, x);
      break;
  }
  for (auto& nb : t.adj_) std::sort(nb.begin(), nb.end());
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y : t.adj_[x]) {
      if (y > x) t.edges_.push_back({x, y});
    }
  }

  // All-pairs first hops: one BFS per destination, ascending neighbor
  // expansion so equal-length paths break ties toward lower indices.
  t.next_hop_.assign(n, std::vector<std::size_t>(n, SIZE_MAX));
  for (std::size_t dst = 0; dst < n; ++dst) {
    auto& hop = t.next_hop_;
    hop[dst][dst] = dst;
    std::deque<std::size_t> frontier{dst};
    while (!frontier.empty()) {
      const std::size_t v = frontier.front();
      frontier.pop_front();
      for (std::size_t w : t.adj_[v]) {
        if (hop[w][dst] != SIZE_MAX) continue;
        hop[w][dst] = v; // first hop from w toward dst
        frontier.push_back(w);
      }
    }
    for (std::size_t x = 0; x < n; ++x) {
      if (hop[x][dst] == SIZE_MAX) {
        throw std::logic_error("Topology: graph is not connected");
      }
    }
  }
  return t;
}

std::size_t Topology::port(std::size_t x, std::size_t y) const {
  const auto& nb = adj_.at(x);
  const auto it = std::lower_bound(nb.begin(), nb.end(), y);
  if (it == nb.end() || *it != y) {
    throw std::invalid_argument("Topology::port: switches not adjacent");
  }
  return 2 + static_cast<std::size_t>(it - nb.begin());
}

std::size_t Topology::next_hop(std::size_t x, std::size_t dst) const {
  if (x == dst) throw std::invalid_argument("Topology::next_hop: x == dst");
  return next_hop_.at(x).at(dst);
}

std::vector<std::size_t> Topology::tree_children(std::size_t x,
                                                 std::size_t root) const {
  std::vector<std::size_t> out;
  for (std::size_t y : adj_.at(x)) {
    if (y != root && next_hop_.at(y).at(root) == x) out.push_back(y);
  }
  return out;
}

std::size_t Topology::max_degree() const {
  std::size_t d = 0;
  for (const auto& nb : adj_) d = std::max(d, nb.size());
  return d;
}

} // namespace tsn::experiments
