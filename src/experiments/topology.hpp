// Switch-level topology generators for scenario construction.
//
// The paper's testbed is a 4-switch full mesh; scaling the simulation to
// 64+ ECDs needs sparser shapes (the INET gPTP showcases use rings and
// trees for the same reason). A Topology fixes, deterministically:
//
//   - the edge list between ECD switches, in ascending (a, b) order —
//     this is also the order any per-link randomness (cable-asymmetry
//     draws) is consumed in, so the mesh case reproduces the legacy
//     scenario byte for byte;
//   - the port map: ports 0/1 of every switch host its two VMs, ports
//     2.. face the neighbors in ascending index order;
//   - shortest-path routing (BFS, lowest-index tie-break), from which the
//     per-domain gPTP spanning trees, the measurement VLAN tree and the
//     static unicast FDB all derive.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tsn::experiments {

enum class TopologyKind {
  kMesh, ///< full mesh: every pair of switches linked (the paper's shape)
  kRing, ///< cycle: switch x links x-1 and x+1 (mod n); 4 ports suffice
  kTree, ///< balanced binary tree (heap order: children of x are 2x+1, 2x+2)
};

/// "mesh" / "ring" / "tree"; throws std::invalid_argument otherwise.
TopologyKind parse_topology(const std::string& name);
const char* topology_name(TopologyKind kind);

struct TopologyEdge {
  std::size_t a = 0;
  std::size_t b = 0; ///< a < b always
};

class Topology {
 public:
  static Topology build(TopologyKind kind, std::size_t n);

  TopologyKind kind() const { return kind_; }
  std::size_t size() const { return adj_.size(); }

  /// Switch-to-switch links in ascending (a, b) order.
  const std::vector<TopologyEdge>& edges() const { return edges_; }
  /// Neighbors of x in ascending index order.
  const std::vector<std::size_t>& neighbors(std::size_t x) const {
    return adj_.at(x);
  }

  /// Port of switch x facing neighbor y: hosts occupy 0 and 1, neighbor
  /// ports follow from 2 in ascending neighbor order. Throws when x and y
  /// are not adjacent.
  std::size_t port(std::size_t x, std::size_t y) const;

  /// First hop from x toward dst along the BFS shortest path (x != dst).
  std::size_t next_hop(std::size_t x, std::size_t dst) const;

  /// Children of x in the shortest-path tree rooted at `root` (ascending):
  /// the neighbors that route *through* x to reach the root.
  std::vector<std::size_t> tree_children(std::size_t x, std::size_t root) const;

  std::size_t max_degree() const;
  /// Ports a switch needs: two host ports plus one per neighbor.
  std::size_t min_port_count() const { return 2 + max_degree(); }

 private:
  TopologyKind kind_ = TopologyKind::kMesh;
  std::vector<std::vector<std::size_t>> adj_;
  std::vector<TopologyEdge> edges_;
  /// next_hop_[x][dst]; next_hop_[x][x] == x.
  std::vector<std::vector<std::size_t>> next_hop_;
};

} // namespace tsn::experiments
