// Quickstart: the smallest useful deployment of the library.
//
// Two nodes connected by one cable run classic single-domain IEEE 802.1AS:
// node A is the grandmaster, node B disciplines its NIC clock with the
// local PI servo. We watch B's offset collapse from 50 us to double-digit
// nanoseconds.
//
//   $ ./quickstart
#include <cstdio>

#include "gptp/stack.hpp"
#include "net/link.hpp"
#include "net/nic.hpp"
#include "sim/simulation.hpp"

using namespace tsn;
using namespace tsn::sim::literals;

int main() {
  // 1. A simulation world and two NICs with imperfect oscillators.
  sim::Simulation sim(/*master_seed=*/2024);

  time::PhcModel phc_model;                      // +/-5 ppm drift, 8 ns HW timestamps
  net::Nic nic_a(sim, phc_model, net::MacAddress::from_u64(0xA), "nodeA");
  net::Nic nic_b(sim, phc_model, net::MacAddress::from_u64(0xB), "nodeB");
  nic_b.phc().step(50'000);                      // B starts 50 us off

  net::LinkConfig cable;                         // 500 ns +/- jitter per direction
  net::Link link(sim, nic_a.port(), nic_b.port(), cable, "a-b");

  // 2. One gPTP stack per NIC: peer-delay runs automatically; we add one
  //    domain-0 instance each, master on A and slave on B.
  gptp::PtpStack stack_a(sim, nic_a, {}, "A");
  gptp::PtpStack stack_b(sim, nic_b, {}, "B");

  gptp::InstanceConfig gm;
  gm.role = gptp::PortRole::kMaster;             // external port configuration
  stack_a.add_instance(gm);

  gptp::InstanceConfig slave;
  slave.role = gptp::PortRole::kSlave;
  auto& slave_inst = stack_b.add_instance(slave);
  slave_inst.enable_local_servo({});             // classic ptp4l: PI -> NIC PHC

  stack_a.start();
  stack_b.start();

  // 3. Run and watch the clocks converge.
  std::printf("%8s %16s %16s\n", "t[s]", "offset B-A [ns]", "servo state");
  for (int second = 0; second <= 30; second += 3) {
    sim.run_until(sim::SimTime(second * 1_s));
    const auto diff = nic_b.phc().read() - nic_a.phc().read();
    std::printf("%8d %16lld %16s\n", second, static_cast<long long>(diff),
                slave_inst.gm_receiving() ? "locked" : "acquiring");
  }

  const auto final_diff = nic_b.phc().read() - nic_a.phc().read();
  std::printf("\nfinal disagreement: %lld ns (%s)\n", static_cast<long long>(final_diff),
              std::llabs(final_diff) < 200 ? "synchronized" : "NOT synchronized");
  std::printf("offsets computed by the slave: %llu\n",
              static_cast<unsigned long long>(slave_inst.counters().offsets_computed));
  return std::llabs(final_diff) < 200 ? 0 : 1;
}
