// Fail-silent dependent clock fail-over.
//
// Shows the hypervisor side of the architecture: the active clock
// synchronization VM maintains CLOCK_SYNCTIME in STSHMEM; when it fails
// silently, the ACRN-style monitor (125 ms period) detects the missing
// heartbeat and injects the takeover interrupt into the warm standby --
// co-located application VMs keep reading a continuous CLOCK_SYNCTIME.
//
//   $ ./failover
#include <cstdio>

#include "experiments/harness.hpp"
#include "util/str.hpp"

using namespace tsn;
using namespace tsn::sim::literals;

int main() {
  experiments::ScenarioConfig cfg;
  cfg.seed = 99;
  experiments::Scenario scenario(cfg);
  experiments::ExperimentHarness harness(scenario);
  harness.bring_up();

  auto& ecd = scenario.ecd(1); // watch node ecd2
  auto& sim = scenario.sim();

  std::printf("node %s: active VM = %s\n\n", ecd.name().c_str(),
              ecd.vm(ecd.st_shmem().active_vm()).name().c_str());

  // An application VM on ecd2 samples CLOCK_SYNCTIME once per second and
  // compares against a healthy reference node (ecd3).
  std::printf("%10s %14s %10s %22s\n", "t", "synctime-ref[ns]", "active", "events");
  std::string last_event;
  ecd.monitor().on_vm_failure = [&](std::size_t idx) {
    last_event = "FAILURE " + ecd.vm(idx).name();
  };
  ecd.monitor().on_takeover = [&](std::size_t idx) {
    last_event += " -> TAKEOVER " + ecd.vm(idx).name();
  };

  const auto t_kill = sim.now() + 6_s;
  bool killed = false;
  for (int s = 0; s <= 15; ++s) {
    sim.run_until(sim.now() + 1_s);
    if (!killed && sim.now() >= t_kill) {
      scenario.gm_vm(1).shutdown(); // the active VM of ecd2 dies silently
      killed = true;
      last_event = "(killed " + scenario.gm_vm(1).name() + ")";
    }
    const auto here = ecd.read_synctime();
    const auto ref = scenario.ecd(2).read_synctime();
    std::printf("%10s %14lld %10s %22s\n", util::hms(sim.now().ns()).c_str(),
                (here && ref) ? static_cast<long long>(*here - *ref) : -1,
                ecd.vm(ecd.st_shmem().active_vm()).name().c_str(), last_event.c_str());
    last_event.clear();
  }

  const bool failed_over = ecd.st_shmem().active_vm() == 1 && ecd.vm(1).is_active();
  const auto here = ecd.read_synctime();
  const auto ref = scenario.ecd(2).read_synctime();
  const long long residual = (here && ref) ? static_cast<long long>(*here - *ref) : -1;
  std::printf("\nfail-over %s; CLOCK_SYNCTIME continuous within %lld ns of the reference\n",
              failed_over ? "SUCCEEDED" : "FAILED", residual);
  return (failed_over && std::llabs(residual) < 10'000) ? 0 : 1;
}
