// Capture simulated gPTP traffic to a Wireshark-readable pcap file.
//
// Runs a grandmaster and a slave for two seconds with a PcapTracer attached
// to the slave's port, then writes ./gptp_capture.pcap. Open it with
// `wireshark gptp_capture.pcap` or `tshark -r gptp_capture.pcap` -- the
// Sync/FollowUp/Pdelay messages dissect natively (EtherType 0x88F7).
//
//   $ ./capture_traffic
#include <cstdio>

#include "gptp/stack.hpp"
#include "net/link.hpp"
#include "net/nic.hpp"
#include "net/pcap.hpp"
#include "sim/simulation.hpp"

using namespace tsn;
using namespace tsn::sim::literals;

int main() {
  sim::Simulation sim(3);
  net::Nic gm(sim, {}, net::MacAddress::from_u64(0xA), "gm");
  net::Nic slave(sim, {}, net::MacAddress::from_u64(0xB), "slave");
  net::Link link(sim, gm.port(), slave.port(), {}, "wire");

  gptp::PtpStack stack_gm(sim, gm, {}, "GM");
  gptp::PtpStack stack_slave(sim, slave, {}, "SLAVE");
  stack_gm.add_instance({.role = gptp::PortRole::kMaster});
  auto& inst = stack_slave.add_instance({.role = gptp::PortRole::kSlave});
  inst.enable_local_servo({});

  const char* path = "gptp_capture.pcap";
  net::PcapTracer tracer(sim, path);
  tracer.attach(slave.port()); // both directions at the slave

  stack_gm.start();
  stack_slave.start();
  sim.run_until(sim::SimTime(2_s));
  tracer.flush();

  std::printf("captured %llu gPTP frames over 2 s into %s\n",
              static_cast<unsigned long long>(tracer.frames_written()), path);
  std::printf("  (expect ~2x8 Sync + FollowUp per second plus 1 Hz peer-delay exchanges)\n");
  std::printf("open with: tshark -r %s | head\n", path);
  return tracer.frames_written() > 40 ? 0 : 1;
}
