// Multi-domain aggregation under a Byzantine grandmaster.
//
// Builds the paper's full four-ECD testbed (four gPTP domains, two clock
// synchronization VMs per node, FTSHMEM-based FTA aggregation), then
// compromises one grandmaster so it distributes preciseOriginTimestamps
// shifted by -24 us -- and shows the fault-tolerant average masking it.
//
//   $ ./multi_domain_byzantine
#include <cstdio>

#include "experiments/harness.hpp"
#include "experiments/report.hpp"
#include "util/str.hpp"

using namespace tsn;
using namespace tsn::sim::literals;

int main() {
  experiments::ScenarioConfig cfg;
  cfg.seed = 7;
  experiments::Scenario scenario(cfg);
  experiments::ExperimentHarness harness(scenario);

  std::printf("booting 4 ECDs / 8 clock sync VMs / 4 gPTP domains...\n");
  harness.bring_up();
  const auto cal = harness.calibrate();
  std::printf("initial synchronization done at t=%s, bound Pi=%.2f us\n",
              util::hms(scenario.sim().now().ns()).c_str(), cal.bound.pi_ns / 1000.0);

  // A clean baseline minute...
  harness.run_measured(1_min);
  const auto baseline = scenario.probe().series().stats();
  std::printf("\nbaseline precision: avg=%.0f ns max=%.0f ns\n", baseline.mean(),
              baseline.max());

  // ...then GM 3 turns Byzantine.
  std::printf("\n*** compromising the grandmaster of domain 3 (pOT -24 us) ***\n");
  scenario.gm_vm(2).compromise(-24'000);
  harness.run_measured(3_min);

  const auto after = scenario.probe().series().stats();
  const double holds = experiments::bound_holding_fraction(scenario.probe().series(),
                                                           cal.bound.pi_ns, cal.gamma_ns);
  std::printf("precision with 1 Byzantine GM: avg=%.0f ns max=%.0f ns\n", after.mean(),
              after.max());
  std::printf("precision bound held for %.1f%% of samples\n", 100.0 * holds);

  // Peek into a slave VM's FTSHMEM: the malicious domain is flagged.
  auto& observer = scenario.vm(0, 1); // c12
  std::printf("\nFTSHMEM validity flags on %s:\n", observer.name().c_str());
  for (std::size_t slot = 0; slot < 4; ++slot) {
    const auto rec = observer.ft_shmem()->load_offset(slot);
    std::printf("  domain %zu: offset=%8.0f ns  valid=%s\n", slot + 1,
                rec ? rec->offset_ns : 0.0,
                observer.ft_shmem()->gm_valid(slot) ? "yes" : "NO (voted out)");
  }

  const bool masked = holds == 1.0;
  std::printf("\nByzantine GM %s by the FTA (f=1, N=4)\n", masked ? "MASKED" : "NOT masked");
  return masked ? 0 : 1;
}
