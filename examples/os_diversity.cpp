// OS diversification vs a kernel-exploit attacker.
//
// Runs the same two-exploit attack twice: once against a monoculture
// (every virtual GM on the exploitable Linux 4.19.1) and once against a
// diversified deployment (only one GM vulnerable). With identical kernels
// the attacker owns two GMs, defeats f = 1 and the clocks fall apart; with
// diversity the second exploit bounces and the FTA masks the single
// Byzantine GM.
//
//   $ ./os_diversity
#include <cstdio>

#include "experiments/harness.hpp"
#include "experiments/report.hpp"
#include "faults/attacker.hpp"

using namespace tsn;
using namespace tsn::sim::literals;

namespace {

struct Outcome {
  std::size_t exploits = 0;
  double avg_ns = 0;
  double max_ns = 0;
  double holds = 0;
};

Outcome attack_run(const std::vector<std::string>& kernels) {
  experiments::ScenarioConfig cfg;
  cfg.seed = 5;
  cfg.gm_kernels = kernels;
  experiments::Scenario scenario(cfg);
  experiments::ExperimentHarness harness(scenario);
  harness.bring_up();
  const auto cal = harness.calibrate();

  faults::Attacker attacker(scenario.sim(), faults::KernelVulnDb::with_defaults());
  const auto t0 = scenario.sim().now().ns();
  attacker.add_step({t0 + 2_min, &scenario.gm_vm(3)});
  attacker.add_step({t0 + 6_min, &scenario.gm_vm(0)});
  attacker.start();
  harness.run_measured(20_min);

  Outcome out;
  out.exploits = attacker.successful_exploits();
  out.avg_ns = scenario.probe().series().stats().mean();
  out.max_ns = scenario.probe().series().stats().max();
  out.holds = experiments::bound_holding_fraction(scenario.probe().series(), cal.bound.pi_ns,
                                                  cal.gamma_ns);
  return out;
}

} // namespace

int main() {
  std::printf("attacker: restricted user on two virtual GMs, exploit for CVE-2018-18955\n\n");

  std::printf("case 1: identical kernels (4.19.1 everywhere)...\n");
  const Outcome mono = attack_run({"4.19.1", "4.19.1", "4.19.1", "4.19.1"});
  std::printf("  exploits=%zu precision avg=%.3g ns max=%.3g ns bound-held=%.1f%%\n\n",
              mono.exploits, mono.avg_ns, mono.max_ns, 100 * mono.holds);

  std::printf("case 2: diversified kernels (only one GM on 4.19.1)...\n");
  const Outcome diverse = attack_run({"5.4.0", "5.10.0", "5.15.0", "4.19.1"});
  std::printf("  exploits=%zu precision avg=%.3g ns max=%.3g ns bound-held=%.1f%%\n\n",
              diverse.exploits, diverse.avg_ns, diverse.max_ns, 100 * diverse.holds);

  const bool shape_ok = mono.exploits == 2 && mono.holds < 1.0 && diverse.exploits == 1 &&
                        diverse.holds == 1.0;
  std::printf("conclusion: %s\n",
              shape_ok
                  ? "monoculture lost synchronization; diversification preserved the bound"
                  : "UNEXPECTED outcome, see numbers above");
  return shape_ok ? 0 : 1;
}
