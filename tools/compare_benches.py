#!/usr/bin/env python3
"""Compare two google-benchmark JSON files benchmark-by-benchmark.

Usage:
    tools/compare_benches.py BASELINE.json CANDIDATE.json [--threshold PCT]
                             [--gate PREFIX[,PREFIX...]]

Prints a per-benchmark table of real-time deltas (positive = candidate is
slower). Exits non-zero when any benchmark regressed by more than
--threshold percent (default 10), so CI can flag perf drift; ungated
benchmarks present in only one file are reported but never fail the
comparison.

With --gate, only benchmarks whose name starts with one of the given
prefixes can fail the run -- the blocking CI job pins the named hot
paths while the rest of the table stays informational. A gate prefix
that matches nothing in the baseline is itself an error (a renamed
benchmark must not silently un-gate), and a gated benchmark that is
present in the baseline but missing from the candidate run is an
explicit gate failure (a deleted or crashed benchmark must not pass
by absence).
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        # Aggregate runs (mean/median/stddev) would double-count; keep the
        # plain iteration entries only.
        if b.get("run_type", "iteration") != "iteration":
            continue
        out[b["name"]] = (float(b["real_time"]), b.get("time_unit", "ns"))
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        metavar="PCT",
        help="fail when any benchmark is more than PCT%% slower (default 10)",
    )
    ap.add_argument(
        "--gate",
        metavar="PREFIX[,PREFIX...]",
        help="only benchmarks starting with one of these prefixes can fail",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    gates = [g for g in (args.gate or "").split(",") if g]
    for g in gates:
        if not any(name.startswith(g) for name in base):
            print(f"gate prefix '{g}' matches no baseline benchmark", file=sys.stderr)
            return 2

    def gated(name):
        return not gates or any(name.startswith(g) for g in gates)

    names = sorted(set(base) | set(cand))
    width = max((len(n) for n in names), default=4)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'candidate':>12}  {'delta':>8}")

    regressions = []
    missing = []
    for name in names:
        if name not in base:
            print(f"{name:<{width}}  {'-':>12}  {cand[name][0]:>12.1f}  {'new':>8}")
            continue
        if name not in cand:
            print(f"{name:<{width}}  {base[name][0]:>12.1f}  {'-':>12}  {'gone':>8}")
            if gates and gated(name):
                missing.append(name)
            continue
        b, bu = base[name]
        c, cu = cand[name]
        if bu != cu:
            print(f"{name:<{width}}  unit mismatch ({bu} vs {cu})", file=sys.stderr)
            if gated(name):
                regressions.append((name, float("inf")))
            continue
        delta = (c - b) / b * 100.0 if b else 0.0
        marker = "" if gated(name) else "  (ungated)"
        print(f"{name:<{width}}  {b:>12.1f}  {c:>12.1f}  {delta:>+7.1f}%{marker}")
        if delta > args.threshold and gated(name):
            regressions.append((name, delta))

    if missing:
        print(
            f"\n{len(missing)} gated benchmark(s) missing from the candidate "
            "run (deleted, renamed, or the binary crashed before reaching "
            "them) -- a gated benchmark must fail loudly, not pass by "
            "absence:",
            file=sys.stderr,
        )
        for name in missing:
            print(f"  {name}: present in baseline, absent in candidate", file=sys.stderr)
    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed more than "
            f"{args.threshold:.1f}%:",
            file=sys.stderr,
        )
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1f}%", file=sys.stderr)
    if missing or regressions:
        return 1
    print(f"\nno regression beyond {args.threshold:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
