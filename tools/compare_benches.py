#!/usr/bin/env python3
"""Compare two google-benchmark JSON files benchmark-by-benchmark.

Usage:
    tools/compare_benches.py BASELINE.json CANDIDATE.json [--threshold PCT]

Prints a per-benchmark table of real-time deltas (positive = candidate is
slower). Exits non-zero when any benchmark regressed by more than
--threshold percent (default 10), so CI can flag perf drift; benchmarks
present in only one file are reported but never fail the comparison.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        # Aggregate runs (mean/median/stddev) would double-count; keep the
        # plain iteration entries only.
        if b.get("run_type", "iteration") != "iteration":
            continue
        out[b["name"]] = (float(b["real_time"]), b.get("time_unit", "ns"))
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        metavar="PCT",
        help="fail when any benchmark is more than PCT%% slower (default 10)",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    names = sorted(set(base) | set(cand))
    width = max((len(n) for n in names), default=4)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'candidate':>12}  {'delta':>8}")

    regressions = []
    for name in names:
        if name not in base:
            print(f"{name:<{width}}  {'-':>12}  {cand[name][0]:>12.1f}  {'new':>8}")
            continue
        if name not in cand:
            print(f"{name:<{width}}  {base[name][0]:>12.1f}  {'-':>12}  {'gone':>8}")
            continue
        b, bu = base[name]
        c, cu = cand[name]
        if bu != cu:
            print(f"{name:<{width}}  unit mismatch ({bu} vs {cu})", file=sys.stderr)
            regressions.append((name, float("inf")))
            continue
        delta = (c - b) / b * 100.0 if b else 0.0
        print(f"{name:<{width}}  {b:>12.1f}  {c:>12.1f}  {delta:>+7.1f}%")
        if delta > args.threshold:
            regressions.append((name, delta))

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed more than "
            f"{args.threshold:.1f}%:",
            file=sys.stderr,
        )
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1f}%", file=sys.stderr)
        return 1
    print(f"\nno regression beyond {args.threshold:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
