// tsnfta_fuzz: randomized fault-campaign fuzzer with invariant oracles
// and seed shrinking.
//
// Campaign mode (default): derive `seeds` randomized testbeds + fault
// profiles from `master_seed`, run each with the InvariantSuite attached,
// and report a deterministic verdict table (byte-identical for any
// threads=). On the first failing case, write a self-contained replay
// file and -- unless shrink=0 -- delta-debug the fault schedule down to a
// minimal reproducer (<case>.min.replay).
//
//   tsnfta_fuzz seeds=64 threads=4
//   tsnfta_fuzz seeds=256 master_seed=7 duration_s=120 out=findings/
//   tsnfta_fuzz seeds=64 ff=1 horizon=1w threads=4
//
// attacks=1 (campaign and export modes) additionally derives a
// seed-pure adversarial schedule per case (src/attack) and attaches the
// attack-eviction oracle; verdict lines gain "attacks=N evicted=M".
//
// ff=1 runs each case's fault phase under the fast-forward controller
// (DESIGN.md §12): quiescent stretches advance analytically, fault and
// attack edges are barriers. horizon=DURATION ("600s", "90m", "36h",
// "1w") sets the fault-phase length like duration_s= but with a unit
// suffix; derive_case stretches the fault spacing with the horizon, so
// week-scale ff campaigns finish in minutes of wall clock.
//
// Replay mode: re-run one saved case (campaign finding or corpus file)
// and print its verdict; exit 1 if it still fails.
//
//   tsnfta_fuzz replay=tests/corpus/near_quorum_loss.replay
//   tsnfta_fuzz replay=finding.replay shrink=1
//
// Export mode: run one derived case and save its scripted twin as a
// replay file regardless of verdict -- how interesting passing cases get
// promoted into tests/corpus/.
//
//   tsnfta_fuzz export=83 out=tests/corpus name=burst_kill
//
// Exit codes: 0 all cases clean, 1 invariant violation(s) found, 2 usage.
#include <algorithm>
#include <cstdio>
#include <string>

#include "check/fuzz.hpp"
#include "util/config.hpp"
#include "util/log.hpp"
#include "util/str.hpp"

using namespace tsn;

namespace {

void print_violations(const check::CaseResult& r, std::size_t limit = 8) {
  const std::size_t n = std::min(limit, r.violations.size());
  for (std::size_t i = 0; i < n; ++i) {
    const check::Violation& v = r.violations[i];
    std::printf("    [%s] t=%lld ms: %s\n", v.invariant.c_str(),
                (long long)(v.t_ns / 1'000'000), v.message.c_str());
  }
  if (r.violations.size() > n) {
    std::printf("    ... and %zu more\n", r.violations.size() - n);
  }
}

int shrink_and_write(const check::FuzzCase& c, const std::string& stem) {
  std::printf("shrinking %s (each probe is a full re-run)...\n", stem.c_str());
  const check::ShrinkOutcome sh = check::shrink_case(c);
  if (!sh.reproduced) {
    std::printf("  scripted twin did not reproduce [%s]; kept the un-shrunk schedule\n",
                sh.target_invariant.c_str());
    return 1;
  }
  const std::string min_path = stem + ".min.replay";
  check::write_replay(min_path, sh.minimized);
  std::printf("  %zu -> %zu faults in %zu probe runs, target [%s] -> %s\n",
              sh.stats.initial_size, sh.stats.final_size, sh.stats.tests_run,
              sh.target_invariant.c_str(), min_path.c_str());
  return 1;
}

} // namespace

int main(int argc, char** argv) {
  util::Config cli;
  try {
    cli = util::Config::from_args(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "usage: tsnfta_fuzz [key=value ...]   (%s)\n", e.what());
    return 2;
  }
  util::set_log_level(util::parse_log_level(cli.get_string("log", "warn")));
  const bool do_shrink = cli.get_bool("shrink", true);
  const bool fast_forward = cli.get_bool("ff", false);

  // horizon= ("600s", "90m", "36h", "1w") and duration_s= are the same
  // knob; horizon wins when both are given.
  std::int64_t duration_ns = cli.get_int("duration_s", 120) * 1'000'000'000LL;
  if (cli.has("horizon")) {
    try {
      duration_ns = util::parse_duration_ns(cli.get_string("horizon"));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "tsnfta_fuzz: %s\n", e.what());
      return 2;
    }
  }

  // ---- replay mode -------------------------------------------------------
  if (cli.has("replay")) {
    const std::string path = cli.get_string("replay");
    check::FuzzCase c;
    try {
      c = check::load_replay(path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "tsnfta_fuzz: %s\n", e.what());
      return 2;
    }
    if (fast_forward) c.fast_forward = true;
    std::printf("replaying %s (seed %llu, %zu ECDs, f=%d, %zu scripted faults%s)\n", path.c_str(),
                (unsigned long long)c.scenario.seed, c.scenario.num_ecds, c.scenario.fta_f,
                c.replay.size(), c.fast_forward ? ", ff" : "");
    const check::CaseResult r = check::run_case(c);
    std::printf("verdict: %s (kills=%llu, Pi=%.2f us)\n", r.summary.c_str(),
                (unsigned long long)r.injector_stats.total_kills, r.bound_ns / 1000.0);
    if (!r.failed()) return 0;
    print_violations(r);
    if (do_shrink && !r.violations.empty()) {
      std::string stem = path;
      const std::size_t dot = stem.rfind(".replay");
      if (dot != std::string::npos) stem = stem.substr(0, dot);
      return shrink_and_write(c, stem);
    }
    return 1;
  }

  // ---- export mode -------------------------------------------------------
  if (cli.has("export")) {
    const std::uint64_t index = static_cast<std::uint64_t>(cli.get_int("export", 0));
    const std::uint64_t master_seed = static_cast<std::uint64_t>(cli.get_int("master_seed", 1));
    const std::string out_dir = cli.get_string("out", ".");
    const bool with_attacks = cli.get_bool("attacks", false);
    check::FuzzCase c = check::derive_case(master_seed, index, duration_ns, with_attacks);
    c.fast_forward = fast_forward;
    const check::CaseResult r = check::run_case(c);
    std::printf("case %llu: seed=%llu ecds=%zu f=%d kills=%llu verdict=%s\n",
                (unsigned long long)index, (unsigned long long)c.scenario.seed, c.scenario.num_ecds,
                c.scenario.fta_f, (unsigned long long)r.injector_stats.total_kills,
                r.summary.c_str());
    if (!r.brought_up) return 1;
    // Persist the scripted twin: the saved schedule is exactly the fault
    // sequence this run executed, so the corpus file stays schedule-exact
    // even if the injector's RNG streams change later.
    check::FuzzCase scripted = c;
    scripted.replay = check::schedule_from_events(r.events);
    if (with_attacks && do_shrink) {
      std::printf("shrinking the fault schedule around the attack verdicts...\n");
      const check::ShrinkOutcome sh = check::shrink_attack_case(scripted);
      if (sh.reproduced) {
        scripted = sh.minimized;
        std::printf("  %zu -> %zu faults in %zu probe runs, signature [%s]\n",
                    sh.stats.initial_size, sh.stats.final_size, sh.stats.tests_run,
                    sh.target_invariant.c_str());
      } else {
        std::printf("  signature did not reproduce scripted; kept the un-shrunk schedule\n");
      }
    }
    const std::string name = cli.get_string(
        "name", util::format("fuzz_%llu_%llu", (unsigned long long)master_seed,
                             (unsigned long long)index));
    const std::string path = out_dir + "/" + name + ".replay";
    check::write_replay(path, scripted);
    std::printf("exported %zu scripted faults -> %s\n", scripted.replay.size(), path.c_str());
    return r.failed() ? 1 : 0;
  }

  // ---- campaign mode -----------------------------------------------------
  check::CampaignConfig cfg;
  cfg.master_seed = static_cast<std::uint64_t>(cli.get_int("master_seed", 1));
  cfg.num_cases = static_cast<std::size_t>(std::max<std::int64_t>(1, cli.get_int("seeds", 64)));
  cfg.threads = static_cast<std::size_t>(std::max<std::int64_t>(0, cli.get_int("threads", 1)));
  cfg.duration_ns = duration_ns;
  cfg.attacks = cli.get_bool("attacks", false);
  cfg.fast_forward = fast_forward;
  const std::string out_dir = cli.get_string("out", ".");

  std::printf("fuzz campaign: %zu cases from master_seed=%llu, %llds fault phase each%s%s\n",
              cfg.num_cases, (unsigned long long)cfg.master_seed,
              (long long)(cfg.duration_ns / 1'000'000'000LL),
              cfg.attacks ? ", adversarial schedules armed" : "",
              cfg.fast_forward ? ", fast-forward on" : "");
  const check::CampaignResult result = check::run_campaign(cfg);
  std::fputs(result.summary_text().c_str(), stdout);

  if (result.failures == 0) return 0;

  // Write a replay for every failing case; shrink the first.
  int rc = 1;
  bool shrunk = false;
  for (const check::CaseResult& r : result.cases) {
    if (!r.failed()) continue;
    std::printf("\ncase %llu FAILED: %s\n", (unsigned long long)r.index, r.summary.c_str());
    print_violations(r);
    if (!r.brought_up) continue; // no schedule to persist
    check::FuzzCase c = check::derive_case(cfg.master_seed, r.index, cfg.duration_ns, cfg.attacks);
    c.fast_forward = cfg.fast_forward;
    const std::string stem =
        util::format("%s/fuzz_%llu_%llu", out_dir.c_str(), (unsigned long long)cfg.master_seed,
                     (unsigned long long)r.index);
    // Persist the scripted twin so the replay is schedule-exact even if
    // injector RNG streams change later.
    check::FuzzCase scripted = c;
    scripted.replay = check::schedule_from_events(r.events);
    check::write_replay(stem + ".replay", scripted);
    std::printf("  replay -> %s.replay\n", stem.c_str());
    if (do_shrink && !shrunk && !r.violations.empty()) {
      shrink_and_write(c, stem);
      shrunk = true;
    }
  }
  return rc;
}
