// tsnfta_sim: run the paper's virtualized TSN testbed from the command
// line with arbitrary parameters, faults and attacks -- the "driver" a
// downstream user reaches for before writing code against the library.
//
// Examples:
//   tsnfta_sim duration_min=10
//   tsnfta_sim duration_min=60 attack_at_min=5 attack_gm=2 attack2_at_min=9 attack2_gm=0
//   tsnfta_sim duration_min=30 inject_faults=true gm_kill_period_min=5
//   tsnfta_sim duration_min=5 aggregation=median sync_interval_ns=62500000
//   tsnfta_sim duration_min=5 pcap=run.pcap
#include <cstdio>

#include "experiments/harness.hpp"
#include "experiments/report.hpp"
#include "faults/attacker.hpp"
#include "faults/injector.hpp"
#include "net/pcap.hpp"
#include "util/config.hpp"
#include "util/log.hpp"
#include "util/str.hpp"

using namespace tsn;
using namespace tsn::sim::literals;

namespace {

core::AggregationMethod parse_method(const std::string& name) {
  if (name == "median") return core::AggregationMethod::kMedian;
  if (name == "mean") return core::AggregationMethod::kMean;
  return core::AggregationMethod::kFta;
}

} // namespace

int main(int argc, char** argv) {
  util::Config cli;
  try {
    cli = util::Config::from_args(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "usage: tsnfta_sim [key=value ...]   (%s)\n", e.what());
    return 2;
  }
  util::set_log_level(util::parse_log_level(cli.get_string("log", "info")));

  experiments::ScenarioConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  cfg.sync_interval_ns = cli.get_int("sync_interval_ns", cfg.sync_interval_ns);
  cfg.aggregation = parse_method(cli.get_string("aggregation", "fta"));
  cfg.validity_threshold_ns = cli.get_double("validity_threshold_ns", cfg.validity_threshold_ns);
  cfg.synctime_feed_forward = cli.get_bool("feed_forward", false);
  cfg.gm_mutual_sync = cli.get_bool("gm_mutual_sync", true);
  if (cli.get_bool("diverse_kernels", false)) {
    cfg.gm_kernels = {"4.19.1", "5.4.0", "5.10.0", "6.1.0"};
  }

  experiments::Scenario scenario(cfg);
  experiments::ExperimentHarness harness(scenario);

  std::unique_ptr<net::PcapTracer> pcap;
  if (cli.has("pcap")) {
    pcap = std::make_unique<net::PcapTracer>(scenario.sim(), cli.get_string("pcap"));
    pcap->attach(scenario.measurement_vm().nic().port());
    std::printf("capturing the measurement VM's traffic to %s\n",
                cli.get_string("pcap").c_str());
  }

  std::printf("booting the 4-ECD testbed (seed %llu)...\n",
              static_cast<unsigned long long>(cfg.seed));
  harness.bring_up();
  const auto cal = harness.calibrate();
  std::printf("initial synchronization complete at t=%s; Pi=%.2f us, gamma=%.2f us\n",
              util::hms(scenario.sim().now().ns()).c_str(), cal.bound.pi_ns / 1000.0,
              cal.gamma_ns / 1000.0);

  faults::Attacker attacker(scenario.sim(), faults::KernelVulnDb::with_defaults());
  const std::int64_t t0 = scenario.sim().now().ns();
  for (const char* prefix : {"attack", "attack2"}) {
    const std::string at_key = std::string(prefix) + "_at_min";
    if (!cli.has(at_key)) continue;
    const std::size_t gm = static_cast<std::size_t>(
        cli.get_int(std::string(prefix) + "_gm", 0));
    attacker.add_step({t0 + cli.get_int(at_key, 0) * 60'000'000'000LL,
                       &scenario.gm_vm(gm % scenario.num_ecds())});
  }
  attacker.start();

  std::unique_ptr<faults::FaultInjector> injector;
  if (cli.get_bool("inject_faults", false)) {
    faults::InjectorConfig icfg;
    icfg.gm_kill_period_ns = cli.get_int("gm_kill_period_min", 30) * 60'000'000'000LL;
    icfg.standby_kills_per_hour = cli.get_double("standby_kills_per_hour", 0.65);
    injector = std::make_unique<faults::FaultInjector>(scenario.sim(), scenario.ecd_ptrs(), icfg);
    injector->spare(&scenario.measurement_vm());
    injector->start();
  }

  const std::int64_t duration = cli.get_int("duration_min", 10) * 60'000'000'000LL;
  std::printf("running the measured phase for %lld min...\n",
              static_cast<long long>(duration / 60'000'000'000LL));
  harness.run_measured(duration);

  experiments::print_precision_series(scenario.probe().series(), cal.bound.pi_ns, cal.gamma_ns,
                                      cli.get_int("bucket_s", 120) * 1'000'000'000LL);
  if (injector) {
    std::printf("\nfault injection: %llu kills (%llu GM), %zu takeovers\n",
                static_cast<unsigned long long>(injector->stats().total_kills),
                static_cast<unsigned long long>(injector->stats().gm_kills),
                harness.events().count(experiments::EventKind::kTakeover));
  }
  if (!attacker.results().empty()) {
    std::printf("attacks: %zu attempted, %zu succeeded\n", attacker.results().size(),
                attacker.successful_exploits());
  }
  if (cli.has("csv")) {
    experiments::dump_series_csv(scenario.probe().series(), cli.get_string("csv"));
    std::printf("series written to %s\n", cli.get_string("csv").c_str());
  }
  if (pcap) {
    pcap->flush();
    std::printf("pcap: %llu frames captured\n",
                static_cast<unsigned long long>(pcap->frames_written()));
  }

  const double holds = experiments::bound_holding_fraction(scenario.probe().series(),
                                                           cal.bound.pi_ns, cal.gamma_ns);
  std::printf("\nprecision bound held for %.2f%% of samples\n", 100.0 * holds);
  return 0;
}
