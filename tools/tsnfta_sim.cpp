// tsnfta_sim: run the paper's virtualized TSN testbed from the command
// line with arbitrary parameters, faults and attacks -- the "driver" a
// downstream user reaches for before writing code against the library.
//
// Examples:
//   tsnfta_sim duration_min=10
//   tsnfta_sim duration_min=60 attack_at_min=5 attack_gm=2 attack2_at_min=9 attack2_gm=0
//   tsnfta_sim duration_min=30 inject_faults=true gm_kill_period_min=5
//   tsnfta_sim duration_min=5 aggregation=median sync_interval_ns=62500000
//   tsnfta_sim duration_min=5 pcap=run.pcap
//   tsnfta_sim duration_min=10 seeds=8 threads=4 csv=sweep.csv
//   tsnfta_sim duration_min=5 num_ecds=64 topology=ring num_domains=8 partitions=8
//   tsnfta_sim horizon=1w ff=1 num_ecds=8 topology=ring
//
// num_ecds=/topology=(mesh|ring|tree)/num_domains= scale the testbed
// beyond the paper's 4-ECD mesh; partitions=N runs the world on the
// conservative-parallel runtime with N worker shards (results identical
// for every N >= 1; pcap/attack knobs need the serial path).
//
// horizon=DURATION ("600s", "90m", "36h", "1w") sets the measured phase
// like duration_min= but with a unit suffix (horizon wins when both are
// given). ff=1 arms the fast-forward analytic mode (DESIGN.md §12):
// quiescent stretches of the measured phase advance analytically, so
// week-scale holdover runs finish in minutes. Serial-only (ignored with
// partitions>0); with inject_faults=true every kill/reboot edge is a
// barrier the windows never cross, while attack_at_min= steps keep the
// event queue busy and the windows shut -- leave ff off for attack runs.
//
// seeds=N runs N replicas (seed, seed+1, ...) through the SweepRunner on
// threads= workers (0 = hardware concurrency). The merged series/stats
// are identical whatever threads= is; seeds=1 (default) reproduces the
// classic single run. pcap capture applies to the first replica only.
#include <algorithm>
#include <cstdio>

#include "experiments/harness.hpp"
#include "experiments/report.hpp"
#include "faults/attacker.hpp"
#include "faults/injector.hpp"
#include "net/pcap.hpp"
#include "obs/manifest.hpp"
#include "sim/fast_forward.hpp"
#include "sweep/sweep_runner.hpp"
#include "util/config.hpp"
#include "util/log.hpp"
#include "util/str.hpp"

using namespace tsn;
using namespace tsn::sim::literals;

namespace {

core::AggregationMethod parse_method(const std::string& name) {
  if (name == "median") return core::AggregationMethod::kMedian;
  if (name == "mean") return core::AggregationMethod::kMean;
  return core::AggregationMethod::kFta;
}

struct Replica {
  util::TimeSeries series;
  experiments::ExperimentHarness::Calibration cal;
  std::int64_t sync_done_ns = 0;
  std::uint64_t injector_kills = 0;
  std::uint64_t injector_gm_kills = 0;
  std::size_t takeovers = 0;
  std::size_t attacks_attempted = 0;
  std::size_t attacks_succeeded = 0;
  std::uint64_t pcap_frames = 0;
  sim::FfStats ff;
  double holds = 0;
  obs::MetricsSnapshot metrics;
};

} // namespace

int main(int argc, char** argv) {
  util::Config cli;
  try {
    cli = util::Config::from_args(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "usage: tsnfta_sim [key=value ...]   (%s)\n", e.what());
    return 2;
  }
  util::set_log_level(util::parse_log_level(cli.get_string("log", "info")));

  experiments::ScenarioConfig base;
  base.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  base.num_ecds = static_cast<std::size_t>(
      std::max<std::int64_t>(2, cli.get_int("num_ecds", (std::int64_t)base.num_ecds)));
  base.topology = experiments::parse_topology(cli.get_string("topology", "mesh"));
  base.num_domains = static_cast<std::size_t>(cli.get_int("num_domains", 0));
  base.partitions = static_cast<std::size_t>(cli.get_int("partitions", 0));
  base.sync_interval_ns = cli.get_int("sync_interval_ns", base.sync_interval_ns);
  base.aggregation = parse_method(cli.get_string("aggregation", "fta"));
  base.validity_threshold_ns = cli.get_double("validity_threshold_ns", base.validity_threshold_ns);
  base.synctime_feed_forward = cli.get_bool("feed_forward", false);
  base.gm_mutual_sync = cli.get_bool("gm_mutual_sync", true);
  if (cli.get_bool("diverse_kernels", false)) {
    base.gm_kernels = {"4.19.1", "5.4.0", "5.10.0", "6.1.0"};
  }

  std::int64_t duration = cli.get_int("duration_min", 10) * 60'000'000'000LL;
  if (cli.has("horizon")) {
    try {
      duration = util::parse_duration_ns(cli.get_string("horizon"));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "tsnfta_sim: %s\n", e.what());
      return 2;
    }
  }
  const bool use_ff = cli.get_bool("ff", false);
  if (use_ff && base.partitions > 0) {
    std::fprintf(stderr, "warning: ff=1 ignored with partitions>0 (fast-forward is serial-only)\n");
  }
  const std::size_t seeds =
      static_cast<std::size_t>(std::max<std::int64_t>(1, cli.get_int("seeds", 1)));

  const auto run_replica = [&](const experiments::ScenarioConfig& cfg,
                               std::size_t index) -> Replica {
    experiments::Scenario scenario(cfg);
    experiments::ExperimentHarness harness(scenario);

    std::unique_ptr<net::PcapTracer> pcap;
    if (cli.has("pcap") && index == 0 && !scenario.partitioned()) {
      pcap = std::make_unique<net::PcapTracer>(scenario.sim(), cli.get_string("pcap"));
      pcap->attach(scenario.measurement_vm().nic().port());
    }

    harness.bring_up();
    const auto cal = harness.calibrate();
    const std::int64_t sync_done = scenario.now_ns();

    faults::Attacker attacker(scenario.control_sim(), faults::KernelVulnDb::with_defaults());
    const std::int64_t t0 = scenario.now_ns();
    for (const char* prefix : {"attack", "attack2"}) {
      const std::string at_key = std::string(prefix) + "_at_min";
      if (!cli.has(at_key)) continue;
      if (scenario.partitioned()) {
        // The attacker's schedule mutates a GM VM directly; that write is
        // only safe on the region owning the VM, so attack runs stay on
        // the serial path.
        if (index == 0) {
          std::fprintf(stderr, "warning: %s ignored with partitions>0\n", at_key.c_str());
        }
        continue;
      }
      const std::size_t gm = static_cast<std::size_t>(
          cli.get_int(std::string(prefix) + "_gm", 0));
      attacker.add_step({t0 + cli.get_int(at_key, 0) * 60'000'000'000LL,
                         &scenario.gm_vm(gm % scenario.num_ecds())});
    }
    attacker.start();

    std::unique_ptr<faults::FaultInjector> injector;
    if (cli.get_bool("inject_faults", false)) {
      faults::InjectorConfig icfg;
      icfg.gm_kill_period_ns = cli.get_int("gm_kill_period_min", 30) * 60'000'000'000LL;
      icfg.standby_kills_per_hour = cli.get_double("standby_kills_per_hour", 0.65);
      injector = std::make_unique<faults::FaultInjector>(scenario.control_sim(),
                                                         scenario.ecd_ptrs(), icfg);
      if (scenario.partitioned()) {
        std::vector<std::size_t> regions(scenario.num_ecds());
        for (std::size_t r = 0; r < regions.size(); ++r) regions[r] = r;
        injector->set_partitioned(scenario.runtime(), std::move(regions), /*home_region=*/0);
      }
      injector->spare(&scenario.measurement_vm());
      injector->start();
    }

    if (use_ff && !scenario.partitioned()) {
      scenario.enable_fast_forward();
      if (injector) {
        sim::FfController* ff = scenario.fast_forward();
        ff->add_participant(injector.get());
        ff->add_barrier(
            [inj = injector.get()](std::int64_t t) { return inj->next_pending_ns(t); });
      }
    }

    harness.run_measured(duration);

    Replica out;
    out.series = scenario.probe().series();
    out.cal = cal;
    out.sync_done_ns = sync_done;
    if (injector) {
      out.injector_kills = injector->stats().total_kills;
      out.injector_gm_kills = injector->stats().gm_kills;
      out.takeovers = harness.events().count(experiments::EventKind::kTakeover);
    }
    out.attacks_attempted = attacker.results().size();
    out.attacks_succeeded = attacker.successful_exploits();
    if (pcap) {
      pcap->flush();
      out.pcap_frames = pcap->frames_written();
    }
    if (scenario.fast_forward()) out.ff = scenario.fast_forward()->stats();
    out.holds = experiments::bound_holding_fraction(out.series, cal.bound.pi_ns, cal.gamma_ns);
    out.metrics = scenario.metrics_snapshot();
    return out;
  };

  sweep::SweepRunner runner(
      {.threads = static_cast<std::size_t>(std::max<std::int64_t>(0, cli.get_int("threads", 0)))});
  std::printf("booting the %zu-ECD %s testbed (seed %llu%s)...\n", base.num_ecds,
              experiments::topology_name(base.topology),
              static_cast<unsigned long long>(base.seed),
              seeds > 1 ? util::format(", %zu replicas on %zu threads", seeds,
                                       runner.threads())
                              .c_str()
                        : "");
  if (cli.has("pcap")) {
    if (base.partitions > 0) {
      std::printf("pcap= ignored with partitions>0 (the tracer hooks the serial event loop)\n");
    } else {
      std::printf("capturing the measurement VM's traffic to %s\n",
                  cli.get_string("pcap").c_str());
    }
  }
  std::printf("running the measured phase for %lld min...\n",
              static_cast<long long>(duration / 60'000'000'000LL));

  const auto results = runner.run(sweep::seed_sweep(base, seeds), run_replica);

  const auto& first = results.front();
  std::printf("initial synchronization complete at t=%s; Pi=%.2f us, gamma=%.2f us\n",
              util::hms(first.sync_done_ns).c_str(), first.cal.bound.pi_ns / 1000.0,
              first.cal.gamma_ns / 1000.0);

  std::vector<util::TimeSeries> series;
  std::vector<double> holds_parts;
  std::vector<std::size_t> counts;
  std::vector<obs::MetricsSnapshot> metric_parts;
  Replica sums;
  for (const auto& r : results) {
    series.push_back(r.series);
    holds_parts.push_back(r.holds);
    counts.push_back(r.series.points().size());
    metric_parts.push_back(r.metrics);
    sums.injector_kills += r.injector_kills;
    sums.injector_gm_kills += r.injector_gm_kills;
    sums.takeovers += r.takeovers;
    sums.attacks_attempted += r.attacks_attempted;
    sums.attacks_succeeded += r.attacks_succeeded;
    sums.pcap_frames += r.pcap_frames;
  }
  const auto merged = sweep::merge_series(series);

  experiments::print_precision_series(merged, first.cal.bound.pi_ns, first.cal.gamma_ns,
                                      cli.get_int("bucket_s", 120) * 1'000'000'000LL);
  if (cli.get_bool("inject_faults", false)) {
    std::printf("\nfault injection: %llu kills (%llu GM), %zu takeovers\n",
                static_cast<unsigned long long>(sums.injector_kills),
                static_cast<unsigned long long>(sums.injector_gm_kills), sums.takeovers);
  }
  if (sums.attacks_attempted > 0) {
    std::printf("attacks: %zu attempted, %zu succeeded\n", sums.attacks_attempted,
                sums.attacks_succeeded);
  }
  if (use_ff && base.partitions == 0) {
    const sim::FfStats& ff = first.ff;
    std::printf("fast-forward: %llu windows skipped %s of %s (%.1f%%)\n",
                static_cast<unsigned long long>(ff.windows),
                util::human_ns(ff.skipped_ns).c_str(), util::human_ns(duration).c_str(),
                100.0 * static_cast<double>(ff.skipped_ns) / static_cast<double>(duration));
  }
  if (cli.has("csv")) {
    experiments::dump_series_csv(merged, cli.get_string("csv"));
    std::printf("series written to %s\n", cli.get_string("csv").c_str());
  }
  if (cli.has("pcap")) {
    std::printf("pcap: %llu frames captured\n",
                static_cast<unsigned long long>(sums.pcap_frames));
  }

  const double held = [&] {
    double weighted = 0;
    std::size_t total = 0;
    for (std::size_t i = 0; i < holds_parts.size(); ++i) {
      weighted += holds_parts[i] * static_cast<double>(counts[i]);
      total += counts[i];
    }
    return total == 0 ? 1.0 : weighted / static_cast<double>(total);
  }();
  std::printf("\nprecision bound held for %.2f%% of samples\n", 100.0 * held);

  const std::string manifest_path = cli.get_string("manifest", "tsnfta_sim_manifest.json");
  if (manifest_path != "none") {
    obs::RunManifest manifest;
    manifest.tool = "tsnfta_sim";
    manifest.seed = base.seed;
    manifest.replicas = results.size();
    manifest.threads = runner.threads();
    manifest.scenario = experiments::scenario_kv(base);
    manifest.metrics = obs::merge_snapshots(metric_parts);
    manifest.extra["bound_held_fraction"] = util::format("%.6f", held);
    manifest.extra["takeovers"] = std::to_string(sums.takeovers);
    manifest.extra["attacks_attempted"] = std::to_string(sums.attacks_attempted);
    obs::write_manifest(manifest_path, manifest);
    std::printf("run manifest -> %s (git %s)\n", manifest_path.c_str(), obs::build_git_sha());
  }
  return 0;
}
