#!/bin/sh
# Run the google-benchmark microbenchmarks and record BENCH_micro.json at
# the repo root (the baseline perf PRs diff against).
#
# Recording is Release-only: numbers from Debug / unspecified builds are
# dominated by assertion and iterator overhead and would poison the
# baseline. Pass --allow-non-release to run anyway (results are NOT
# written to BENCH_micro.json in that case, only printed).
#
# Usage: tools/run_benches.sh [--allow-non-release] [build-dir]
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)

allow_non_release=0
if [ "${1:-}" = "--allow-non-release" ]; then
  allow_non_release=1
  shift
fi
build_dir=${1:-"$repo_root/build"}

if [ ! -x "$build_dir/bench/micro_benchmarks" ]; then
  echo "building micro_benchmarks in $build_dir..."
  cmake -S "$repo_root" -B "$build_dir" >/dev/null
  cmake --build "$build_dir" --target micro_benchmarks -j >/dev/null
fi

build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build_dir/CMakeCache.txt" 2>/dev/null || true)
if [ "$build_type" != "Release" ]; then
  echo "warning: $build_dir is CMAKE_BUILD_TYPE='${build_type:-<unset>}', not Release." >&2
  if [ "$allow_non_release" -ne 1 ]; then
    echo "refusing to record BENCH_micro.json from a non-Release build." >&2
    echo "configure with -DCMAKE_BUILD_TYPE=Release, or pass --allow-non-release" >&2
    echo "to run without recording." >&2
    exit 1
  fi
  echo "running without recording (--allow-non-release)." >&2
  exec "$build_dir/bench/micro_benchmarks"
fi

"$build_dir/bench/micro_benchmarks" \
  --benchmark_format=json \
  --benchmark_out="$repo_root/BENCH_micro.json" \
  --benchmark_out_format=json

echo "wrote $repo_root/BENCH_micro.json"
