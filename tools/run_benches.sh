#!/bin/sh
# Run the google-benchmark microbenchmarks and record BENCH_micro.json at
# the repo root (the baseline perf PRs diff against).
#
# Usage: tools/run_benches.sh [build-dir]
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

if [ ! -x "$build_dir/bench/micro_benchmarks" ]; then
  echo "building micro_benchmarks in $build_dir..."
  cmake -S "$repo_root" -B "$build_dir" >/dev/null
  cmake --build "$build_dir" --target micro_benchmarks -j >/dev/null
fi

"$build_dir/bench/micro_benchmarks" \
  --benchmark_format=json \
  --benchmark_out="$repo_root/BENCH_micro.json" \
  --benchmark_out_format=json

echo "wrote $repo_root/BENCH_micro.json"
