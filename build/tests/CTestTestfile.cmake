# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/time_tests[1]_include.cmake")
include("/root/repo/build/tests/faults_tests[1]_include.cmake")
include("/root/repo/build/tests/measure_tests[1]_include.cmake")
include("/root/repo/build/tests/experiments_tests[1]_include.cmake")
include("/root/repo/build/tests/sweep_tests[1]_include.cmake")
include("/root/repo/build/tests/hv_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/gptp_tests[1]_include.cmake")
include("/root/repo/build/tests/net_tests[1]_include.cmake")
