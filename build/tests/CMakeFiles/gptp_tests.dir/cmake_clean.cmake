file(REMOVE_RECURSE
  "CMakeFiles/gptp_tests.dir/gptp/bmca_test.cpp.o"
  "CMakeFiles/gptp_tests.dir/gptp/bmca_test.cpp.o.d"
  "CMakeFiles/gptp_tests.dir/gptp/bridge_test.cpp.o"
  "CMakeFiles/gptp_tests.dir/gptp/bridge_test.cpp.o.d"
  "CMakeFiles/gptp_tests.dir/gptp/e2e_delay_test.cpp.o"
  "CMakeFiles/gptp_tests.dir/gptp/e2e_delay_test.cpp.o.d"
  "CMakeFiles/gptp_tests.dir/gptp/fuzz_parse_test.cpp.o"
  "CMakeFiles/gptp_tests.dir/gptp/fuzz_parse_test.cpp.o.d"
  "CMakeFiles/gptp_tests.dir/gptp/hot_standby_test.cpp.o"
  "CMakeFiles/gptp_tests.dir/gptp/hot_standby_test.cpp.o.d"
  "CMakeFiles/gptp_tests.dir/gptp/link_delay_test.cpp.o"
  "CMakeFiles/gptp_tests.dir/gptp/link_delay_test.cpp.o.d"
  "CMakeFiles/gptp_tests.dir/gptp/servo_test.cpp.o"
  "CMakeFiles/gptp_tests.dir/gptp/servo_test.cpp.o.d"
  "CMakeFiles/gptp_tests.dir/gptp/stack_test.cpp.o"
  "CMakeFiles/gptp_tests.dir/gptp/stack_test.cpp.o.d"
  "CMakeFiles/gptp_tests.dir/gptp/sync_e2e_test.cpp.o"
  "CMakeFiles/gptp_tests.dir/gptp/sync_e2e_test.cpp.o.d"
  "CMakeFiles/gptp_tests.dir/gptp/wire_messages_test.cpp.o"
  "CMakeFiles/gptp_tests.dir/gptp/wire_messages_test.cpp.o.d"
  "gptp_tests"
  "gptp_tests.pdb"
  "gptp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gptp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
