# Empty dependencies file for gptp_tests.
# This may be replaced when dependencies are built.
