
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gptp/bmca_test.cpp" "tests/CMakeFiles/gptp_tests.dir/gptp/bmca_test.cpp.o" "gcc" "tests/CMakeFiles/gptp_tests.dir/gptp/bmca_test.cpp.o.d"
  "/root/repo/tests/gptp/bridge_test.cpp" "tests/CMakeFiles/gptp_tests.dir/gptp/bridge_test.cpp.o" "gcc" "tests/CMakeFiles/gptp_tests.dir/gptp/bridge_test.cpp.o.d"
  "/root/repo/tests/gptp/e2e_delay_test.cpp" "tests/CMakeFiles/gptp_tests.dir/gptp/e2e_delay_test.cpp.o" "gcc" "tests/CMakeFiles/gptp_tests.dir/gptp/e2e_delay_test.cpp.o.d"
  "/root/repo/tests/gptp/fuzz_parse_test.cpp" "tests/CMakeFiles/gptp_tests.dir/gptp/fuzz_parse_test.cpp.o" "gcc" "tests/CMakeFiles/gptp_tests.dir/gptp/fuzz_parse_test.cpp.o.d"
  "/root/repo/tests/gptp/hot_standby_test.cpp" "tests/CMakeFiles/gptp_tests.dir/gptp/hot_standby_test.cpp.o" "gcc" "tests/CMakeFiles/gptp_tests.dir/gptp/hot_standby_test.cpp.o.d"
  "/root/repo/tests/gptp/link_delay_test.cpp" "tests/CMakeFiles/gptp_tests.dir/gptp/link_delay_test.cpp.o" "gcc" "tests/CMakeFiles/gptp_tests.dir/gptp/link_delay_test.cpp.o.d"
  "/root/repo/tests/gptp/servo_test.cpp" "tests/CMakeFiles/gptp_tests.dir/gptp/servo_test.cpp.o" "gcc" "tests/CMakeFiles/gptp_tests.dir/gptp/servo_test.cpp.o.d"
  "/root/repo/tests/gptp/stack_test.cpp" "tests/CMakeFiles/gptp_tests.dir/gptp/stack_test.cpp.o" "gcc" "tests/CMakeFiles/gptp_tests.dir/gptp/stack_test.cpp.o.d"
  "/root/repo/tests/gptp/sync_e2e_test.cpp" "tests/CMakeFiles/gptp_tests.dir/gptp/sync_e2e_test.cpp.o" "gcc" "tests/CMakeFiles/gptp_tests.dir/gptp/sync_e2e_test.cpp.o.d"
  "/root/repo/tests/gptp/wire_messages_test.cpp" "tests/CMakeFiles/gptp_tests.dir/gptp/wire_messages_test.cpp.o" "gcc" "tests/CMakeFiles/gptp_tests.dir/gptp/wire_messages_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gptp/CMakeFiles/tsn_gptp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tsn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tsn_time/CMakeFiles/tsn_time.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tsn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
