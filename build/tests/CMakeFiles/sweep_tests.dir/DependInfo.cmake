
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sweep/sweep_runner_test.cpp" "tests/CMakeFiles/sweep_tests.dir/sweep/sweep_runner_test.cpp.o" "gcc" "tests/CMakeFiles/sweep_tests.dir/sweep/sweep_runner_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sweep/CMakeFiles/tsn_sweep.dir/DependInfo.cmake"
  "/root/repo/build/src/experiments/CMakeFiles/tsn_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/tsn_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/tsn_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/tsn_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tsn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gptp/CMakeFiles/tsn_gptp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tsn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tsn_time/CMakeFiles/tsn_time.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tsn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
