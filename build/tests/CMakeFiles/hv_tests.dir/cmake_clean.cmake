file(REMOVE_RECURSE
  "CMakeFiles/hv_tests.dir/hv/ecd_failover_test.cpp.o"
  "CMakeFiles/hv_tests.dir/hv/ecd_failover_test.cpp.o.d"
  "CMakeFiles/hv_tests.dir/hv/fail_consistent_test.cpp.o"
  "CMakeFiles/hv_tests.dir/hv/fail_consistent_test.cpp.o.d"
  "CMakeFiles/hv_tests.dir/hv/st_shmem_test.cpp.o"
  "CMakeFiles/hv_tests.dir/hv/st_shmem_test.cpp.o.d"
  "CMakeFiles/hv_tests.dir/hv/synctime_updater_test.cpp.o"
  "CMakeFiles/hv_tests.dir/hv/synctime_updater_test.cpp.o.d"
  "hv_tests"
  "hv_tests.pdb"
  "hv_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
