
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hv/ecd_failover_test.cpp" "tests/CMakeFiles/hv_tests.dir/hv/ecd_failover_test.cpp.o" "gcc" "tests/CMakeFiles/hv_tests.dir/hv/ecd_failover_test.cpp.o.d"
  "/root/repo/tests/hv/fail_consistent_test.cpp" "tests/CMakeFiles/hv_tests.dir/hv/fail_consistent_test.cpp.o" "gcc" "tests/CMakeFiles/hv_tests.dir/hv/fail_consistent_test.cpp.o.d"
  "/root/repo/tests/hv/st_shmem_test.cpp" "tests/CMakeFiles/hv_tests.dir/hv/st_shmem_test.cpp.o" "gcc" "tests/CMakeFiles/hv_tests.dir/hv/st_shmem_test.cpp.o.d"
  "/root/repo/tests/hv/synctime_updater_test.cpp" "tests/CMakeFiles/hv_tests.dir/hv/synctime_updater_test.cpp.o" "gcc" "tests/CMakeFiles/hv_tests.dir/hv/synctime_updater_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hv/CMakeFiles/tsn_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tsn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gptp/CMakeFiles/tsn_gptp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tsn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tsn_time/CMakeFiles/tsn_time.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tsn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
