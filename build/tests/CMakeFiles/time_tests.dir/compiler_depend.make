# Empty compiler generated dependencies file for time_tests.
# This may be replaced when dependencies are built.
