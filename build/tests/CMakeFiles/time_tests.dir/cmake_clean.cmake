file(REMOVE_RECURSE
  "CMakeFiles/time_tests.dir/tsn_time/clock_properties_test.cpp.o"
  "CMakeFiles/time_tests.dir/tsn_time/clock_properties_test.cpp.o.d"
  "CMakeFiles/time_tests.dir/tsn_time/oscillator_test.cpp.o"
  "CMakeFiles/time_tests.dir/tsn_time/oscillator_test.cpp.o.d"
  "CMakeFiles/time_tests.dir/tsn_time/phc_clock_test.cpp.o"
  "CMakeFiles/time_tests.dir/tsn_time/phc_clock_test.cpp.o.d"
  "time_tests"
  "time_tests.pdb"
  "time_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
