# Empty dependencies file for capture_traffic.
# This may be replaced when dependencies are built.
