file(REMOVE_RECURSE
  "CMakeFiles/capture_traffic.dir/capture_traffic.cpp.o"
  "CMakeFiles/capture_traffic.dir/capture_traffic.cpp.o.d"
  "capture_traffic"
  "capture_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capture_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
