# Empty dependencies file for os_diversity.
# This may be replaced when dependencies are built.
