file(REMOVE_RECURSE
  "CMakeFiles/os_diversity.dir/os_diversity.cpp.o"
  "CMakeFiles/os_diversity.dir/os_diversity.cpp.o.d"
  "os_diversity"
  "os_diversity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
