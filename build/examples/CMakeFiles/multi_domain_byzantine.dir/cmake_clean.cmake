file(REMOVE_RECURSE
  "CMakeFiles/multi_domain_byzantine.dir/multi_domain_byzantine.cpp.o"
  "CMakeFiles/multi_domain_byzantine.dir/multi_domain_byzantine.cpp.o.d"
  "multi_domain_byzantine"
  "multi_domain_byzantine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_domain_byzantine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
