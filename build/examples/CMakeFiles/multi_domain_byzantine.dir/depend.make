# Empty dependencies file for multi_domain_byzantine.
# This may be replaced when dependencies are built.
