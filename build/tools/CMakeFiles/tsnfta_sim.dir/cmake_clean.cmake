file(REMOVE_RECURSE
  "CMakeFiles/tsnfta_sim.dir/tsnfta_sim.cpp.o"
  "CMakeFiles/tsnfta_sim.dir/tsnfta_sim.cpp.o.d"
  "tsnfta_sim"
  "tsnfta_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsnfta_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
