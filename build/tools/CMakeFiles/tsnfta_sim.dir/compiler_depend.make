# Empty compiler generated dependencies file for tsnfta_sim.
# This may be replaced when dependencies are built.
