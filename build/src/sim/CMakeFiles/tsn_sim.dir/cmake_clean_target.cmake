file(REMOVE_RECURSE
  "libtsn_sim.a"
)
