file(REMOVE_RECURSE
  "CMakeFiles/tsn_sim.dir/event_queue.cpp.o"
  "CMakeFiles/tsn_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/tsn_sim.dir/simulation.cpp.o"
  "CMakeFiles/tsn_sim.dir/simulation.cpp.o.d"
  "libtsn_sim.a"
  "libtsn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
