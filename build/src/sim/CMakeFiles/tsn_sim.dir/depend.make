# Empty dependencies file for tsn_sim.
# This may be replaced when dependencies are built.
