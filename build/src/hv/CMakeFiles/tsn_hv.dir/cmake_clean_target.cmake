file(REMOVE_RECURSE
  "libtsn_hv.a"
)
