file(REMOVE_RECURSE
  "CMakeFiles/tsn_hv.dir/clock_sync_vm.cpp.o"
  "CMakeFiles/tsn_hv.dir/clock_sync_vm.cpp.o.d"
  "CMakeFiles/tsn_hv.dir/ecd.cpp.o"
  "CMakeFiles/tsn_hv.dir/ecd.cpp.o.d"
  "CMakeFiles/tsn_hv.dir/monitor.cpp.o"
  "CMakeFiles/tsn_hv.dir/monitor.cpp.o.d"
  "CMakeFiles/tsn_hv.dir/st_shmem.cpp.o"
  "CMakeFiles/tsn_hv.dir/st_shmem.cpp.o.d"
  "CMakeFiles/tsn_hv.dir/synctime_updater.cpp.o"
  "CMakeFiles/tsn_hv.dir/synctime_updater.cpp.o.d"
  "libtsn_hv.a"
  "libtsn_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
