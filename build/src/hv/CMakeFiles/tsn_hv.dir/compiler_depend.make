# Empty compiler generated dependencies file for tsn_hv.
# This may be replaced when dependencies are built.
