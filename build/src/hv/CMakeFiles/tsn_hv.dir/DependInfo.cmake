
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hv/clock_sync_vm.cpp" "src/hv/CMakeFiles/tsn_hv.dir/clock_sync_vm.cpp.o" "gcc" "src/hv/CMakeFiles/tsn_hv.dir/clock_sync_vm.cpp.o.d"
  "/root/repo/src/hv/ecd.cpp" "src/hv/CMakeFiles/tsn_hv.dir/ecd.cpp.o" "gcc" "src/hv/CMakeFiles/tsn_hv.dir/ecd.cpp.o.d"
  "/root/repo/src/hv/monitor.cpp" "src/hv/CMakeFiles/tsn_hv.dir/monitor.cpp.o" "gcc" "src/hv/CMakeFiles/tsn_hv.dir/monitor.cpp.o.d"
  "/root/repo/src/hv/st_shmem.cpp" "src/hv/CMakeFiles/tsn_hv.dir/st_shmem.cpp.o" "gcc" "src/hv/CMakeFiles/tsn_hv.dir/st_shmem.cpp.o.d"
  "/root/repo/src/hv/synctime_updater.cpp" "src/hv/CMakeFiles/tsn_hv.dir/synctime_updater.cpp.o" "gcc" "src/hv/CMakeFiles/tsn_hv.dir/synctime_updater.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tsn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gptp/CMakeFiles/tsn_gptp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tsn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tsn_time/CMakeFiles/tsn_time.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tsn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
