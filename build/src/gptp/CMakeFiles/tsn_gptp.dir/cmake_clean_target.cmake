file(REMOVE_RECURSE
  "libtsn_gptp.a"
)
