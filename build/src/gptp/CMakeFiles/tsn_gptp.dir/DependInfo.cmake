
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gptp/bmca.cpp" "src/gptp/CMakeFiles/tsn_gptp.dir/bmca.cpp.o" "gcc" "src/gptp/CMakeFiles/tsn_gptp.dir/bmca.cpp.o.d"
  "/root/repo/src/gptp/bridge.cpp" "src/gptp/CMakeFiles/tsn_gptp.dir/bridge.cpp.o" "gcc" "src/gptp/CMakeFiles/tsn_gptp.dir/bridge.cpp.o.d"
  "/root/repo/src/gptp/instance.cpp" "src/gptp/CMakeFiles/tsn_gptp.dir/instance.cpp.o" "gcc" "src/gptp/CMakeFiles/tsn_gptp.dir/instance.cpp.o.d"
  "/root/repo/src/gptp/link_delay.cpp" "src/gptp/CMakeFiles/tsn_gptp.dir/link_delay.cpp.o" "gcc" "src/gptp/CMakeFiles/tsn_gptp.dir/link_delay.cpp.o.d"
  "/root/repo/src/gptp/messages.cpp" "src/gptp/CMakeFiles/tsn_gptp.dir/messages.cpp.o" "gcc" "src/gptp/CMakeFiles/tsn_gptp.dir/messages.cpp.o.d"
  "/root/repo/src/gptp/servo.cpp" "src/gptp/CMakeFiles/tsn_gptp.dir/servo.cpp.o" "gcc" "src/gptp/CMakeFiles/tsn_gptp.dir/servo.cpp.o.d"
  "/root/repo/src/gptp/stack.cpp" "src/gptp/CMakeFiles/tsn_gptp.dir/stack.cpp.o" "gcc" "src/gptp/CMakeFiles/tsn_gptp.dir/stack.cpp.o.d"
  "/root/repo/src/gptp/types.cpp" "src/gptp/CMakeFiles/tsn_gptp.dir/types.cpp.o" "gcc" "src/gptp/CMakeFiles/tsn_gptp.dir/types.cpp.o.d"
  "/root/repo/src/gptp/wire.cpp" "src/gptp/CMakeFiles/tsn_gptp.dir/wire.cpp.o" "gcc" "src/gptp/CMakeFiles/tsn_gptp.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tsn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tsn_time/CMakeFiles/tsn_time.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tsn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
