# Empty compiler generated dependencies file for tsn_gptp.
# This may be replaced when dependencies are built.
