file(REMOVE_RECURSE
  "CMakeFiles/tsn_gptp.dir/bmca.cpp.o"
  "CMakeFiles/tsn_gptp.dir/bmca.cpp.o.d"
  "CMakeFiles/tsn_gptp.dir/bridge.cpp.o"
  "CMakeFiles/tsn_gptp.dir/bridge.cpp.o.d"
  "CMakeFiles/tsn_gptp.dir/instance.cpp.o"
  "CMakeFiles/tsn_gptp.dir/instance.cpp.o.d"
  "CMakeFiles/tsn_gptp.dir/link_delay.cpp.o"
  "CMakeFiles/tsn_gptp.dir/link_delay.cpp.o.d"
  "CMakeFiles/tsn_gptp.dir/messages.cpp.o"
  "CMakeFiles/tsn_gptp.dir/messages.cpp.o.d"
  "CMakeFiles/tsn_gptp.dir/servo.cpp.o"
  "CMakeFiles/tsn_gptp.dir/servo.cpp.o.d"
  "CMakeFiles/tsn_gptp.dir/stack.cpp.o"
  "CMakeFiles/tsn_gptp.dir/stack.cpp.o.d"
  "CMakeFiles/tsn_gptp.dir/types.cpp.o"
  "CMakeFiles/tsn_gptp.dir/types.cpp.o.d"
  "CMakeFiles/tsn_gptp.dir/wire.cpp.o"
  "CMakeFiles/tsn_gptp.dir/wire.cpp.o.d"
  "libtsn_gptp.a"
  "libtsn_gptp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_gptp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
