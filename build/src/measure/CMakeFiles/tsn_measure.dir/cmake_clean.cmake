file(REMOVE_RECURSE
  "CMakeFiles/tsn_measure.dir/bound.cpp.o"
  "CMakeFiles/tsn_measure.dir/bound.cpp.o.d"
  "CMakeFiles/tsn_measure.dir/path_delay.cpp.o"
  "CMakeFiles/tsn_measure.dir/path_delay.cpp.o.d"
  "CMakeFiles/tsn_measure.dir/precision_probe.cpp.o"
  "CMakeFiles/tsn_measure.dir/precision_probe.cpp.o.d"
  "libtsn_measure.a"
  "libtsn_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
