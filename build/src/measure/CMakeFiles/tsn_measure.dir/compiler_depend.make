# Empty compiler generated dependencies file for tsn_measure.
# This may be replaced when dependencies are built.
