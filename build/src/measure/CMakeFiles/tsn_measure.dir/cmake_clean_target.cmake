file(REMOVE_RECURSE
  "libtsn_measure.a"
)
