file(REMOVE_RECURSE
  "libtsn_time.a"
)
