# Empty dependencies file for tsn_time.
# This may be replaced when dependencies are built.
