
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tsn_time/oscillator.cpp" "src/tsn_time/CMakeFiles/tsn_time.dir/oscillator.cpp.o" "gcc" "src/tsn_time/CMakeFiles/tsn_time.dir/oscillator.cpp.o.d"
  "/root/repo/src/tsn_time/phc_clock.cpp" "src/tsn_time/CMakeFiles/tsn_time.dir/phc_clock.cpp.o" "gcc" "src/tsn_time/CMakeFiles/tsn_time.dir/phc_clock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tsn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tsn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
