file(REMOVE_RECURSE
  "CMakeFiles/tsn_time.dir/oscillator.cpp.o"
  "CMakeFiles/tsn_time.dir/oscillator.cpp.o.d"
  "CMakeFiles/tsn_time.dir/phc_clock.cpp.o"
  "CMakeFiles/tsn_time.dir/phc_clock.cpp.o.d"
  "libtsn_time.a"
  "libtsn_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
