# CMake generated Testfile for 
# Source directory: /root/repo/src/tsn_time
# Build directory: /root/repo/build/src/tsn_time
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
