# Empty compiler generated dependencies file for tsn_experiments.
# This may be replaced when dependencies are built.
