file(REMOVE_RECURSE
  "libtsn_experiments.a"
)
