file(REMOVE_RECURSE
  "CMakeFiles/tsn_experiments.dir/event_log.cpp.o"
  "CMakeFiles/tsn_experiments.dir/event_log.cpp.o.d"
  "CMakeFiles/tsn_experiments.dir/harness.cpp.o"
  "CMakeFiles/tsn_experiments.dir/harness.cpp.o.d"
  "CMakeFiles/tsn_experiments.dir/report.cpp.o"
  "CMakeFiles/tsn_experiments.dir/report.cpp.o.d"
  "CMakeFiles/tsn_experiments.dir/scenario.cpp.o"
  "CMakeFiles/tsn_experiments.dir/scenario.cpp.o.d"
  "libtsn_experiments.a"
  "libtsn_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
