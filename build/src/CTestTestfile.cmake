# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("tsn_time")
subdirs("net")
subdirs("gptp")
subdirs("core")
subdirs("hv")
subdirs("faults")
subdirs("measure")
subdirs("experiments")
subdirs("sweep")
