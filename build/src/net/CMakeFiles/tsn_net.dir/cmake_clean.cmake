file(REMOVE_RECURSE
  "CMakeFiles/tsn_net.dir/frame.cpp.o"
  "CMakeFiles/tsn_net.dir/frame.cpp.o.d"
  "CMakeFiles/tsn_net.dir/link.cpp.o"
  "CMakeFiles/tsn_net.dir/link.cpp.o.d"
  "CMakeFiles/tsn_net.dir/mac.cpp.o"
  "CMakeFiles/tsn_net.dir/mac.cpp.o.d"
  "CMakeFiles/tsn_net.dir/nic.cpp.o"
  "CMakeFiles/tsn_net.dir/nic.cpp.o.d"
  "CMakeFiles/tsn_net.dir/pcap.cpp.o"
  "CMakeFiles/tsn_net.dir/pcap.cpp.o.d"
  "CMakeFiles/tsn_net.dir/port.cpp.o"
  "CMakeFiles/tsn_net.dir/port.cpp.o.d"
  "CMakeFiles/tsn_net.dir/switch.cpp.o"
  "CMakeFiles/tsn_net.dir/switch.cpp.o.d"
  "libtsn_net.a"
  "libtsn_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
