
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/frame.cpp" "src/net/CMakeFiles/tsn_net.dir/frame.cpp.o" "gcc" "src/net/CMakeFiles/tsn_net.dir/frame.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/tsn_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/tsn_net.dir/link.cpp.o.d"
  "/root/repo/src/net/mac.cpp" "src/net/CMakeFiles/tsn_net.dir/mac.cpp.o" "gcc" "src/net/CMakeFiles/tsn_net.dir/mac.cpp.o.d"
  "/root/repo/src/net/nic.cpp" "src/net/CMakeFiles/tsn_net.dir/nic.cpp.o" "gcc" "src/net/CMakeFiles/tsn_net.dir/nic.cpp.o.d"
  "/root/repo/src/net/pcap.cpp" "src/net/CMakeFiles/tsn_net.dir/pcap.cpp.o" "gcc" "src/net/CMakeFiles/tsn_net.dir/pcap.cpp.o.d"
  "/root/repo/src/net/port.cpp" "src/net/CMakeFiles/tsn_net.dir/port.cpp.o" "gcc" "src/net/CMakeFiles/tsn_net.dir/port.cpp.o.d"
  "/root/repo/src/net/switch.cpp" "src/net/CMakeFiles/tsn_net.dir/switch.cpp.o" "gcc" "src/net/CMakeFiles/tsn_net.dir/switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tsn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tsn_time/CMakeFiles/tsn_time.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tsn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
