# Empty dependencies file for tsn_net.
# This may be replaced when dependencies are built.
