file(REMOVE_RECURSE
  "libtsn_sweep.a"
)
