# Empty dependencies file for tsn_sweep.
# This may be replaced when dependencies are built.
