file(REMOVE_RECURSE
  "CMakeFiles/tsn_sweep.dir/sweep_runner.cpp.o"
  "CMakeFiles/tsn_sweep.dir/sweep_runner.cpp.o.d"
  "CMakeFiles/tsn_sweep.dir/thread_pool.cpp.o"
  "CMakeFiles/tsn_sweep.dir/thread_pool.cpp.o.d"
  "libtsn_sweep.a"
  "libtsn_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
