file(REMOVE_RECURSE
  "libtsn_util.a"
)
