# Empty dependencies file for tsn_util.
# This may be replaced when dependencies are built.
