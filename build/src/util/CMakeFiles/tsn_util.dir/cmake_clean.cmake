file(REMOVE_RECURSE
  "CMakeFiles/tsn_util.dir/config.cpp.o"
  "CMakeFiles/tsn_util.dir/config.cpp.o.d"
  "CMakeFiles/tsn_util.dir/csv.cpp.o"
  "CMakeFiles/tsn_util.dir/csv.cpp.o.d"
  "CMakeFiles/tsn_util.dir/histogram.cpp.o"
  "CMakeFiles/tsn_util.dir/histogram.cpp.o.d"
  "CMakeFiles/tsn_util.dir/log.cpp.o"
  "CMakeFiles/tsn_util.dir/log.cpp.o.d"
  "CMakeFiles/tsn_util.dir/rng.cpp.o"
  "CMakeFiles/tsn_util.dir/rng.cpp.o.d"
  "CMakeFiles/tsn_util.dir/series.cpp.o"
  "CMakeFiles/tsn_util.dir/series.cpp.o.d"
  "CMakeFiles/tsn_util.dir/stats.cpp.o"
  "CMakeFiles/tsn_util.dir/stats.cpp.o.d"
  "CMakeFiles/tsn_util.dir/str.cpp.o"
  "CMakeFiles/tsn_util.dir/str.cpp.o.d"
  "libtsn_util.a"
  "libtsn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
