file(REMOVE_RECURSE
  "CMakeFiles/tsn_faults.dir/attacker.cpp.o"
  "CMakeFiles/tsn_faults.dir/attacker.cpp.o.d"
  "CMakeFiles/tsn_faults.dir/injector.cpp.o"
  "CMakeFiles/tsn_faults.dir/injector.cpp.o.d"
  "CMakeFiles/tsn_faults.dir/kernel_vuln.cpp.o"
  "CMakeFiles/tsn_faults.dir/kernel_vuln.cpp.o.d"
  "libtsn_faults.a"
  "libtsn_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
