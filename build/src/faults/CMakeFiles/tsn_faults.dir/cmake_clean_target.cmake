file(REMOVE_RECURSE
  "libtsn_faults.a"
)
