# Empty dependencies file for tsn_faults.
# This may be replaced when dependencies are built.
