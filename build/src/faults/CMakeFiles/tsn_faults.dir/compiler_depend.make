# Empty compiler generated dependencies file for tsn_faults.
# This may be replaced when dependencies are built.
