file(REMOVE_RECURSE
  "CMakeFiles/tsn_core.dir/coordinator.cpp.o"
  "CMakeFiles/tsn_core.dir/coordinator.cpp.o.d"
  "CMakeFiles/tsn_core.dir/ft_shmem.cpp.o"
  "CMakeFiles/tsn_core.dir/ft_shmem.cpp.o.d"
  "CMakeFiles/tsn_core.dir/fta.cpp.o"
  "CMakeFiles/tsn_core.dir/fta.cpp.o.d"
  "CMakeFiles/tsn_core.dir/validity.cpp.o"
  "CMakeFiles/tsn_core.dir/validity.cpp.o.d"
  "libtsn_core.a"
  "libtsn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
