# Empty compiler generated dependencies file for fig3a_attack_identical.
# This may be replaced when dependencies are built.
