file(REMOVE_RECURSE
  "CMakeFiles/fig3a_attack_identical.dir/fig3a_attack_identical.cpp.o"
  "CMakeFiles/fig3a_attack_identical.dir/fig3a_attack_identical.cpp.o.d"
  "fig3a_attack_identical"
  "fig3a_attack_identical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_attack_identical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
