file(REMOVE_RECURSE
  "CMakeFiles/ablation_fail_consistent.dir/ablation_fail_consistent.cpp.o"
  "CMakeFiles/ablation_fail_consistent.dir/ablation_fail_consistent.cpp.o.d"
  "ablation_fail_consistent"
  "ablation_fail_consistent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fail_consistent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
