# Empty compiler generated dependencies file for ablation_fail_consistent.
# This may be replaced when dependencies are built.
