file(REMOVE_RECURSE
  "CMakeFiles/baseline_kyriakakis.dir/baseline_kyriakakis.cpp.o"
  "CMakeFiles/baseline_kyriakakis.dir/baseline_kyriakakis.cpp.o.d"
  "baseline_kyriakakis"
  "baseline_kyriakakis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_kyriakakis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
