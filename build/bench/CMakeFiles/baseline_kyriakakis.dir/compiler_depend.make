# Empty compiler generated dependencies file for baseline_kyriakakis.
# This may be replaced when dependencies are built.
