# Empty dependencies file for table_bounds.
# This may be replaced when dependencies are built.
