file(REMOVE_RECURSE
  "CMakeFiles/fig3b_attack_diverse.dir/fig3b_attack_diverse.cpp.o"
  "CMakeFiles/fig3b_attack_diverse.dir/fig3b_attack_diverse.cpp.o.d"
  "fig3b_attack_diverse"
  "fig3b_attack_diverse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_attack_diverse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
