# Empty compiler generated dependencies file for fig3b_attack_diverse.
# This may be replaced when dependencies are built.
