# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ablation_e2e_vs_p2p.
