file(REMOVE_RECURSE
  "CMakeFiles/ablation_e2e_vs_p2p.dir/ablation_e2e_vs_p2p.cpp.o"
  "CMakeFiles/ablation_e2e_vs_p2p.dir/ablation_e2e_vs_p2p.cpp.o.d"
  "ablation_e2e_vs_p2p"
  "ablation_e2e_vs_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_e2e_vs_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
