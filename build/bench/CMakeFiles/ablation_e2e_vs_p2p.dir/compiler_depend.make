# Empty compiler generated dependencies file for ablation_e2e_vs_p2p.
# This may be replaced when dependencies are built.
