# Empty dependencies file for ablation_feed_forward.
# This may be replaced when dependencies are built.
