file(REMOVE_RECURSE
  "CMakeFiles/ablation_feed_forward.dir/ablation_feed_forward.cpp.o"
  "CMakeFiles/ablation_feed_forward.dir/ablation_feed_forward.cpp.o.d"
  "ablation_feed_forward"
  "ablation_feed_forward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_feed_forward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
