file(REMOVE_RECURSE
  "CMakeFiles/fig5_zoom_events.dir/fig5_zoom_events.cpp.o"
  "CMakeFiles/fig5_zoom_events.dir/fig5_zoom_events.cpp.o.d"
  "fig5_zoom_events"
  "fig5_zoom_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_zoom_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
