# Empty compiler generated dependencies file for fig5_zoom_events.
# This may be replaced when dependencies are built.
