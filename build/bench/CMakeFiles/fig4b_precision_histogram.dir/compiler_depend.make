# Empty compiler generated dependencies file for fig4b_precision_histogram.
# This may be replaced when dependencies are built.
