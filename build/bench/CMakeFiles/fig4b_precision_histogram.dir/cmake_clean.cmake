file(REMOVE_RECURSE
  "CMakeFiles/fig4b_precision_histogram.dir/fig4b_precision_histogram.cpp.o"
  "CMakeFiles/fig4b_precision_histogram.dir/fig4b_precision_histogram.cpp.o.d"
  "fig4b_precision_histogram"
  "fig4b_precision_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_precision_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
