file(REMOVE_RECURSE
  "CMakeFiles/ablation_sync_interval.dir/ablation_sync_interval.cpp.o"
  "CMakeFiles/ablation_sync_interval.dir/ablation_sync_interval.cpp.o.d"
  "ablation_sync_interval"
  "ablation_sync_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sync_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
