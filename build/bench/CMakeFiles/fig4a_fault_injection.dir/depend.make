# Empty dependencies file for fig4a_fault_injection.
# This may be replaced when dependencies are built.
