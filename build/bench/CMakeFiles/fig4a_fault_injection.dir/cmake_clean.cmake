file(REMOVE_RECURSE
  "CMakeFiles/fig4a_fault_injection.dir/fig4a_fault_injection.cpp.o"
  "CMakeFiles/fig4a_fault_injection.dir/fig4a_fault_injection.cpp.o.d"
  "fig4a_fault_injection"
  "fig4a_fault_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_fault_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
