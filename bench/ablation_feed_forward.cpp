// Ablation: feedback vs feed-forward CLOCK_SYNCTIME (the paper's
// future-work hypothesis, sec. III-C discussion).
//
// The paper attributes the frequent precision spikes to the feedback
// control of the derived software clocks and cites RADclock's feed-forward
// design as the candidate fix. Our SyncTimeUpdater implements both; this
// bench compares the spike behaviour (p99/max) of the measured precision.
// Both variants run through the SweepRunner (threads= knob).
#include "bench_common.hpp"
#include "util/stats.hpp"

using namespace tsn;
using namespace tsn::sim::literals;

int main(int argc, char** argv) {
  const auto cli = bench::parse_cli(argc, argv);
  bench::banner("Ablation: feedback vs feed-forward CLOCK_SYNCTIME",
                "sec. III-C discussion / future work");

  struct Variant {
    const char* name;
    bool feed_forward;
  };
  const Variant variants[] = {{"feedback (phc2sys-style, paper)", false},
                              {"feed-forward (RADclock-style)", true}};

  std::vector<experiments::ScenarioConfig> configs;
  for (const auto& v : variants) {
    experiments::ScenarioConfig cfg = bench::scenario_from_cli(cli);
    cfg.synctime_feed_forward = v.feed_forward;
    configs.push_back(cfg);
  }

  struct Result {
    double avg = 0, p99 = 0, max = 0;
    obs::MetricsSnapshot metrics;
  };
  const std::int64_t duration = cli.get_int("duration_min", 30) * 60'000'000'000LL;
  sweep::SweepRunner runner(bench::sweep_options_from_cli(cli));
  const auto results = runner.run(
      configs, [&](const experiments::ScenarioConfig& cfg, std::size_t) {
        experiments::Scenario scenario(cfg);
        experiments::ExperimentHarness harness(scenario);
        harness.bring_up();
        harness.calibrate();
        harness.run_measured(duration);
        util::SampleSet samples;
        for (const auto& p : scenario.probe().series().points()) samples.add(p.value);
        const auto& st = scenario.probe().series().stats();
        return Result{st.mean(), samples.quantile(0.99), st.max(),
                      scenario.metrics_snapshot()};
      });

  std::vector<experiments::ComparisonRow> table;
  for (std::size_t i = 0; i < results.size(); ++i) {
    table.push_back({variants[i].name,
                     variants[i].feed_forward ? "(hypothesized better tail)" : "(baseline)",
                     util::format("avg=%.0fns p99=%.0fns max=%.0fns", results[i].avg,
                                  results[i].p99, results[i].max),
                     ""});
  }
  experiments::print_comparison_table("CLOCK_SYNCTIME derivation ablation (fault-free)", table);
  std::printf("\npaper hypothesis: feed-forward reduces spike tail; measured tail ratio "
              "(feedback/feed-forward p99) = %.2f\n",
              results[0].p99 / results[1].p99);

  std::vector<obs::MetricsSnapshot> metric_parts;
  for (const auto& r : results) metric_parts.push_back(r.metrics);
  auto manifest = bench::make_manifest("ablation_feed_forward", configs.front(), results.size(),
                                       runner.threads(), sweep::merge_metrics(metric_parts));
  manifest.extra["p99_feedback_ns"] = util::format("%.1f", results[0].p99);
  manifest.extra["p99_feed_forward_ns"] = util::format("%.1f", results[1].p99);
  bench::write_manifest_from_cli(cli, manifest);
  return 0;
}
