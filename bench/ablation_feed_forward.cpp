// Ablation: feedback vs feed-forward CLOCK_SYNCTIME (the paper's
// future-work hypothesis, sec. III-C discussion).
//
// The paper attributes the frequent precision spikes to the feedback
// control of the derived software clocks and cites RADclock's feed-forward
// design as the candidate fix. Our SyncTimeUpdater implements both; this
// bench compares the spike behaviour (p99/max) of the measured precision.
#include "bench_common.hpp"
#include "util/stats.hpp"

using namespace tsn;
using namespace tsn::sim::literals;

int main(int argc, char** argv) {
  const auto cli = bench::parse_cli(argc, argv);
  bench::banner("Ablation: feedback vs feed-forward CLOCK_SYNCTIME",
                "sec. III-C discussion / future work");

  struct Row {
    const char* name;
    bool feed_forward;
    double avg = 0, p99 = 0, max = 0;
  };
  Row rows[] = {{"feedback (phc2sys-style, paper)", false}, {"feed-forward (RADclock-style)", true}};

  const std::int64_t duration = cli.get_int("duration_min", 30) * 60'000'000'000LL;
  for (auto& row : rows) {
    experiments::ScenarioConfig cfg = bench::scenario_from_cli(cli);
    cfg.synctime_feed_forward = row.feed_forward;
    experiments::Scenario scenario(cfg);
    experiments::ExperimentHarness harness(scenario);
    harness.bring_up();
    harness.calibrate();
    harness.run_measured(duration);
    util::SampleSet samples;
    for (const auto& p : scenario.probe().series().points()) samples.add(p.value);
    row.avg = scenario.probe().series().stats().mean();
    row.p99 = samples.quantile(0.99);
    row.max = scenario.probe().series().stats().max();
  }

  std::vector<experiments::ComparisonRow> table;
  for (const auto& row : rows) {
    table.push_back({row.name, row.feed_forward ? "(hypothesized better tail)" : "(baseline)",
                     util::format("avg=%.0fns p99=%.0fns max=%.0fns", row.avg, row.p99, row.max),
                     ""});
  }
  experiments::print_comparison_table("CLOCK_SYNCTIME derivation ablation (fault-free)", table);
  std::printf("\npaper hypothesis: feed-forward reduces spike tail; measured tail ratio "
              "(feedback/feed-forward p99) = %.2f\n",
              rows[0].p99 / rows[1].p99);
  return 0;
}
