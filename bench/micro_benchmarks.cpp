// Google-benchmark microbenchmarks for the hot paths of the library:
// the FTA itself, FTSHMEM primitives, the event queue, the PI servo, the
// wire format, and the clock models.
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <vector>

#include "alloc_hook.hpp"
#include "core/ft_shmem.hpp"
#include "core/fta.hpp"
#include "core/seqlock.hpp"
#include "experiments/harness.hpp"
#include "experiments/scenario.hpp"
#include "gptp/bridge.hpp"
#include "gptp/messages.hpp"
#include "gptp/servo.hpp"
#include "gptp/stack.hpp"
#include "net/link.hpp"
#include "net/nic.hpp"
#include "net/switch.hpp"
#include "sim/fast_forward.hpp"
#include "sim/simulation.hpp"
#include "tsn_time/phc_clock.hpp"
#include "util/rng.hpp"

namespace {

using namespace tsn;

void BM_FtaAggregate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::RngStream rng(1, "bm-fta");
  std::vector<double> values;
  for (int i = 0; i < n; ++i) values.push_back(rng.uniform(-1e6, 1e6));
  for (auto _ : state) {
    auto copy = values;
    benchmark::DoNotOptimize(core::fault_tolerant_average(std::move(copy), 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FtaAggregate)->Arg(4)->Arg(8)->Arg(16)->Arg(64);

void BM_Median(benchmark::State& state) {
  util::RngStream rng(1, "bm-med");
  std::vector<double> values;
  for (int i = 0; i < state.range(0); ++i) values.push_back(rng.uniform(-1e6, 1e6));
  for (auto _ : state) {
    auto copy = values;
    benchmark::DoNotOptimize(core::median(std::move(copy)));
  }
}
BENCHMARK(BM_Median)->Arg(4)->Arg(64);

void BM_SeqLockStore(benchmark::State& state) {
  core::SeqLock<core::GmOffsetRecord> lock;
  core::GmOffsetRecord rec;
  rec.offset_ns = 42.0;
  for (auto _ : state) {
    lock.store(rec);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SeqLockStore);

void BM_SeqLockLoad(benchmark::State& state) {
  core::SeqLock<core::GmOffsetRecord> lock;
  lock.store({});
  for (auto _ : state) {
    benchmark::DoNotOptimize(lock.load());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SeqLockLoad);

void BM_FtShmemGate(benchmark::State& state) {
  core::FtShmem shm(4);
  std::int64_t now = 0;
  for (auto _ : state) {
    now += 125;
    benchmark::DoNotOptimize(shm.try_acquire_gate(now, 125));
  }
}
BENCHMARK(BM_FtShmemGate);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  sim::EventQueue q;
  std::int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) q.schedule(sim::SimTime(t + (i * 7919) % 1000), [] {});
    while (auto e = q.try_pop()) benchmark::DoNotOptimize(&e);
    t += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_EventQueuePostAndPop(benchmark::State& state) {
  // The no-handle fast path Simulation::every() rides on: no slab
  // traffic, and — the zero-allocation contract — no heap traffic at all
  // once the wheel's bucket storage is warm (allocs_per_iter must be 0).
  sim::EventQueue q;
  std::int64_t t = 0;
  // Warm the wheel: every ring bucket must have grown its storage to the
  // working set before allocations are counted (the contract is zero
  // allocs in steady state, not on first touch).
  for (int w = 0; w < 8192; ++w) {
    for (int i = 0; i < 64; ++i) q.post(sim::SimTime(t + (i * 7919) % 1000), [] {});
    while (auto e = q.try_pop()) benchmark::DoNotOptimize(&e);
    t += 1000;
  }
  // Sample the counter at iteration boundaries (not around the whole
  // loop): the framework allocates a couple of times starting/stopping
  // its timers, which would otherwise smear a constant ~2 allocs/run
  // over the steady-state count.
  std::uint64_t allocs_first = 0;
  std::uint64_t allocs_last = 0;
  std::uint64_t iters = 0;
  for (auto _ : state) {
    const std::uint64_t now = bench::alloc_count();
    if (iters == 0) allocs_first = now;
    allocs_last = now;
    ++iters;
    for (int i = 0; i < 64; ++i) q.post(sim::SimTime(t + (i * 7919) % 1000), [] {});
    while (auto e = q.try_pop()) benchmark::DoNotOptimize(&e);
    t += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 64);
  if (bench::alloc_hook_active() && iters > 1) {
    state.counters["allocs_per_iter"] =
        static_cast<double>(allocs_last - allocs_first) /
        static_cast<double>(iters - 1);
  }
}
BENCHMARK(BM_EventQueuePostAndPop);

void BM_EventQueueScheduleCancelHalf(benchmark::State& state) {
  // Timeout-style usage: half the scheduled events are cancelled before
  // they fire; cancellation must stay allocation-free via the slab.
  sim::EventQueue q;
  std::vector<sim::EventHandle> handles;
  handles.reserve(64);
  std::int64_t t = 0;
  for (auto _ : state) {
    handles.clear();
    for (int i = 0; i < 64; ++i) {
      handles.push_back(q.schedule(sim::SimTime(t + (i * 7919) % 1000), [] {}));
    }
    for (int i = 0; i < 64; i += 2) handles[static_cast<std::size_t>(i)].cancel();
    while (auto e = q.try_pop()) benchmark::DoNotOptimize(&e);
    t += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleCancelHalf);

void BM_PiServoSample(benchmark::State& state) {
  gptp::PiServo servo;
  std::int64_t ts = 0;
  for (auto _ : state) {
    ts += 125'000'000;
    benchmark::DoNotOptimize(servo.sample(500, ts));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PiServoSample);

void BM_SerializeFollowUp(benchmark::State& state) {
  gptp::FollowUpMessage m;
  m.header.type = gptp::MessageType::kFollowUp;
  m.header.sequence_id = 7;
  m.precise_origin = gptp::Timestamp::from_ns(123456789);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gptp::serialize(gptp::Message{m}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SerializeFollowUp);

void BM_ParseFollowUp(benchmark::State& state) {
  gptp::FollowUpMessage m;
  m.header.type = gptp::MessageType::kFollowUp;
  const auto bytes = gptp::serialize(gptp::Message{m});
  for (auto _ : state) {
    benchmark::DoNotOptimize(gptp::parse(bytes));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseFollowUp);

void BM_PhcRead(benchmark::State& state) {
  sim::Simulation sim(1);
  time::PhcModel model;
  time::PhcClock phc(sim, model, "bm");
  for (auto _ : state) {
    benchmark::DoNotOptimize(phc.read());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PhcRead);

void BM_SimulationPeriodicTasks(benchmark::State& state) {
  // End-to-end simulation throughput: N periodic no-op tasks at 8 Hz.
  for (auto _ : state) {
    sim::Simulation sim(1);
    for (int i = 0; i < 32; ++i) {
      sim.every(sim::SimTime(i), 125'000'000, [](sim::SimTime) {});
    }
    sim.run_until(sim::SimTime(10'000'000'000LL)); // 10 s
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 32 * 80);
}
BENCHMARK(BM_SimulationPeriodicTasks);

void BM_SwitchMulticastForward(benchmark::State& state) {
  // One ingress frame fanned out to three egress ports through the pooled
  // zero-copy path: pointer passing + refcount bumps, no payload copies.
  // After the pool and wheel warm up, a full ingress->3x-delivery cycle
  // must allocate nothing (allocs_per_iter == 0).
  sim::Simulation sim(1);
  time::PhcModel quiet;
  quiet.oscillator.initial_drift_ppm = 0.0;
  quiet.oscillator.wander_sigma_ppm = 0.0;
  quiet.timestamp_jitter_ns = 0.0;
  net::SwitchConfig scfg;
  scfg.port_count = 4;
  scfg.residence_jitter_ns = 0.0;
  scfg.phc = quiet;
  net::Switch sw(sim, scfg, "sw");
  std::vector<std::unique_ptr<net::Nic>> nics;
  std::vector<std::unique_ptr<net::Link>> links;
  net::LinkConfig lc;
  lc.a_to_b = {500, 0.0};
  lc.b_to_a = {500, 0.0};
  for (std::uint64_t i = 0; i < 4; ++i) {
    nics.push_back(std::make_unique<net::Nic>(sim, quiet, net::MacAddress::from_u64(0x10 + i),
                                              "n" + std::to_string(i)));
    links.push_back(
        std::make_unique<net::Link>(sim, nics.back()->port(), sw.port(i), lc, "l" + std::to_string(i)));
  }
  const net::MacAddress mcast = net::MacAddress::from_u64(0x333300000001ULL);
  for (std::size_t p = 1; p < 4; ++p) sw.add_fdb_entry(0, mcast, p);
  std::uint64_t delivered = 0;
  for (std::size_t i = 1; i < 4; ++i) {
    nics[i]->join_multicast(mcast);
    nics[i]->set_rx_handler(0x1234, [&delivered](const net::EthernetFrame&, const net::RxMeta&) {
      ++delivered;
    });
  }

  auto send_one = [&] {
    net::FrameRef frame = net::FramePool::local().acquire();
    net::EthernetFrame& eth = frame.writable();
    eth.dst = mcast;
    eth.src = nics[0]->mac();
    eth.ethertype = 0x1234;
    eth.payload.resize(64);
    nics[0]->send(std::move(frame), {});
    sim.run_until(sim::SimTime(sim.now().ns() + 1'000'000)); // drain all hops
  };
  // Warm pool and wheel storage before counting (see BM_EventQueuePostAndPop).
  for (int w = 0; w < 4096; ++w) send_one();
  // Boundary-sampled like BM_EventQueuePostAndPop: keeps the framework's
  // own timer-bookkeeping allocations out of the steady-state count.
  std::uint64_t allocs_first = 0;
  std::uint64_t allocs_last = 0;
  std::uint64_t iters = 0;
  for (auto _ : state) {
    const std::uint64_t now = bench::alloc_count();
    if (iters == 0) allocs_first = now;
    allocs_last = now;
    ++iters;
    send_one();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
  if (bench::alloc_hook_active() && iters > 1) {
    state.counters["allocs_per_iter"] =
        static_cast<double>(allocs_last - allocs_first) /
        static_cast<double>(iters - 1);
  }
}
BENCHMARK(BM_SwitchMulticastForward);

void BM_E2eSyncExchange(benchmark::State& state) {
  // Full protocol round: GM and slave stacks exchange Sync/FollowUp and
  // Pdelay over a link for one second of simulated time per iteration
  // (8 sync intervals), exercising templates, pooled frames and the wheel
  // together. Steady-state allocations stay bounded to what the servo and
  // stats paths legitimately buffer.
  sim::Simulation sim(1);
  time::PhcModel quiet;
  quiet.oscillator.initial_drift_ppm = 5.0; // give the servo real work
  net::Nic a(sim, quiet, net::MacAddress::from_u64(0xA), "a");
  net::Nic b(sim, quiet, net::MacAddress::from_u64(0xB), "b");
  net::LinkConfig lc;
  lc.a_to_b = {500, 0.0};
  lc.b_to_a = {500, 0.0};
  net::Link link(sim, a.port(), b.port(), lc, "ab");
  gptp::PtpStack sa(sim, a, {}, "gm");
  gptp::PtpStack sb(sim, b, {}, "slave");
  gptp::InstanceConfig gm;
  gm.role = gptp::PortRole::kMaster;
  gptp::InstanceConfig sl;
  sl.role = gptp::PortRole::kSlave;
  sa.add_instance(gm);
  auto& slave = sb.add_instance(sl);
  sa.start();
  sb.start();
  for (auto _ : state) {
    sim.run_until(sim::SimTime(sim.now().ns() + 1'000'000'000LL));
  }
  benchmark::DoNotOptimize(slave.counters().offsets_computed);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(slave.counters().syncs_received));
}
BENCHMARK(BM_E2eSyncExchange);

void BM_AttackSyncStorm(benchmark::State& state) {
  // Sync-storm DoS load path (src/attack kSyncStorm): a compromised bridge
  // floods standalone Syncs for an unconfigured domain at 2 kHz while
  // relaying one legitimate domain GM -> slave. One simulated second per
  // iteration measures storm generation, switch fanout and the victim
  // endpoint's parse-and-drop, on top of the honest sync traffic.
  sim::Simulation sim(1);
  time::PhcModel quiet;
  quiet.oscillator.initial_drift_ppm = 0.0;
  quiet.oscillator.wander_sigma_ppm = 0.0;
  quiet.timestamp_jitter_ns = 0.0;
  net::SwitchConfig scfg;
  scfg.port_count = 4;
  scfg.residence_base_ns = 2'000;
  scfg.residence_jitter_ns = 0.0;
  scfg.phc = quiet;
  net::Switch sw(sim, scfg, "sw");
  net::Nic gm_nic(sim, quiet, net::MacAddress::from_u64(0xA), "gm");
  net::Nic slave_nic(sim, quiet, net::MacAddress::from_u64(0xB), "slave");
  net::LinkConfig lc;
  lc.a_to_b = {600, 0.0};
  lc.b_to_a = {600, 0.0};
  net::Link l_gm(sim, gm_nic.port(), sw.port(0), lc, "gm-sw");
  net::Link l_slave(sim, slave_nic.port(), sw.port(1), lc, "sw-slave");
  gptp::PtpStack gm_stack(sim, gm_nic, {}, "gm");
  gptp::PtpStack slave_stack(sim, slave_nic, {}, "slave");
  gptp::InstanceConfig gm;
  gm.role = gptp::PortRole::kMaster;
  gm_stack.add_instance(gm);
  gptp::InstanceConfig sl;
  sl.role = gptp::PortRole::kSlave;
  auto& slave = slave_stack.add_instance(sl);
  gptp::BridgeConfig bcfg;
  gptp::BridgeDomainConfig dom;
  dom.domain = 0;
  dom.slave_port = 0;
  dom.master_ports = {1};
  bcfg.domains = {dom};
  gptp::TimeAwareBridge bridge(sim, sw, bcfg, "br");
  gm_stack.start();
  slave_stack.start();
  bridge.start();
  bridge.start_sync_storm(0x7F, 500'000); // 2 kHz on an unconfigured domain
  sim.run_until(sim::SimTime(1'000'000'000LL)); // warm pools and the wheel
  for (auto _ : state) {
    sim.run_until(sim::SimTime(sim.now().ns() + 1'000'000'000LL));
    benchmark::DoNotOptimize(bridge.counters().storm_syncs_sent);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(bridge.counters().storm_syncs_sent));
  benchmark::DoNotOptimize(slave.counters().offsets_computed);
}
BENCHMARK(BM_AttackSyncStorm);

void BM_FastForwardHoldover(benchmark::State& state) {
  // Fast-forward acceptance benchmark (DESIGN.md §12): a one-hour quiescent
  // holdover run on the 8-ECD ring, event-simulated end to end at Arg(0)
  // and with the analytic fast-forward mode at Arg(1). Manual timing covers
  // only the post-calibration horizon -- the part fast-forward can skip --
  // so the two arguments' real_time ratio is the analytic speedup.
  const bool ff = state.range(0) != 0;
  constexpr std::int64_t kHourNs = 3600 * 1'000'000'000LL;
  for (auto _ : state) {
    experiments::ScenarioConfig cfg;
    cfg.seed = 7;
    cfg.num_ecds = 8;
    cfg.topology = experiments::TopologyKind::kRing;
    cfg.partitions = 0;
    experiments::Scenario sc(cfg);
    experiments::ExperimentHarness h(sc);
    h.bring_up();
    h.calibrate();
    if (ff) sc.enable_fast_forward();
    const std::int64_t horizon = sc.now_ns() + kHourNs;
    const auto t0 = std::chrono::steady_clock::now();
    sc.run_to(horizon);
    const auto t1 = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());
    if (ff) {
      const sim::FfStats& st = sc.fast_forward()->stats();
      state.counters["skipped_s"] = static_cast<double>(st.skipped_ns) / 1e9;
      state.counters["windows"] = static_cast<double>(st.windows);
    }
    benchmark::DoNotOptimize(sc.gm_clock_disagreement_ns());
  }
}
BENCHMARK(BM_FastForwardHoldover)
    ->Arg(0)
    ->Arg(1)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
