// Google-benchmark microbenchmarks for the hot paths of the library:
// the FTA itself, FTSHMEM primitives, the event queue, the PI servo, the
// wire format, and the clock models.
#include <benchmark/benchmark.h>

#include "core/ft_shmem.hpp"
#include "core/fta.hpp"
#include "core/seqlock.hpp"
#include "gptp/messages.hpp"
#include "gptp/servo.hpp"
#include "sim/simulation.hpp"
#include "tsn_time/phc_clock.hpp"
#include "util/rng.hpp"

namespace {

using namespace tsn;

void BM_FtaAggregate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::RngStream rng(1, "bm-fta");
  std::vector<double> values;
  for (int i = 0; i < n; ++i) values.push_back(rng.uniform(-1e6, 1e6));
  for (auto _ : state) {
    auto copy = values;
    benchmark::DoNotOptimize(core::fault_tolerant_average(std::move(copy), 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FtaAggregate)->Arg(4)->Arg(8)->Arg(16)->Arg(64);

void BM_Median(benchmark::State& state) {
  util::RngStream rng(1, "bm-med");
  std::vector<double> values;
  for (int i = 0; i < state.range(0); ++i) values.push_back(rng.uniform(-1e6, 1e6));
  for (auto _ : state) {
    auto copy = values;
    benchmark::DoNotOptimize(core::median(std::move(copy)));
  }
}
BENCHMARK(BM_Median)->Arg(4)->Arg(64);

void BM_SeqLockStore(benchmark::State& state) {
  core::SeqLock<core::GmOffsetRecord> lock;
  core::GmOffsetRecord rec;
  rec.offset_ns = 42.0;
  for (auto _ : state) {
    lock.store(rec);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SeqLockStore);

void BM_SeqLockLoad(benchmark::State& state) {
  core::SeqLock<core::GmOffsetRecord> lock;
  lock.store({});
  for (auto _ : state) {
    benchmark::DoNotOptimize(lock.load());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SeqLockLoad);

void BM_FtShmemGate(benchmark::State& state) {
  core::FtShmem shm(4);
  std::int64_t now = 0;
  for (auto _ : state) {
    now += 125;
    benchmark::DoNotOptimize(shm.try_acquire_gate(now, 125));
  }
}
BENCHMARK(BM_FtShmemGate);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  sim::EventQueue q;
  std::int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) q.schedule(sim::SimTime(t + (i * 7919) % 1000), [] {});
    while (auto e = q.try_pop()) benchmark::DoNotOptimize(&e);
    t += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_EventQueuePostAndPop(benchmark::State& state) {
  // The no-handle fast path Simulation::every() rides on: no slab
  // traffic, pure heap churn.
  sim::EventQueue q;
  std::int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) q.post(sim::SimTime(t + (i * 7919) % 1000), [] {});
    while (auto e = q.try_pop()) benchmark::DoNotOptimize(&e);
    t += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueuePostAndPop);

void BM_EventQueueScheduleCancelHalf(benchmark::State& state) {
  // Timeout-style usage: half the scheduled events are cancelled before
  // they fire; cancellation must stay allocation-free via the slab.
  sim::EventQueue q;
  std::vector<sim::EventHandle> handles;
  handles.reserve(64);
  std::int64_t t = 0;
  for (auto _ : state) {
    handles.clear();
    for (int i = 0; i < 64; ++i) {
      handles.push_back(q.schedule(sim::SimTime(t + (i * 7919) % 1000), [] {}));
    }
    for (int i = 0; i < 64; i += 2) handles[static_cast<std::size_t>(i)].cancel();
    while (auto e = q.try_pop()) benchmark::DoNotOptimize(&e);
    t += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleCancelHalf);

void BM_PiServoSample(benchmark::State& state) {
  gptp::PiServo servo;
  std::int64_t ts = 0;
  for (auto _ : state) {
    ts += 125'000'000;
    benchmark::DoNotOptimize(servo.sample(500, ts));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PiServoSample);

void BM_SerializeFollowUp(benchmark::State& state) {
  gptp::FollowUpMessage m;
  m.header.type = gptp::MessageType::kFollowUp;
  m.header.sequence_id = 7;
  m.precise_origin = gptp::Timestamp::from_ns(123456789);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gptp::serialize(gptp::Message{m}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SerializeFollowUp);

void BM_ParseFollowUp(benchmark::State& state) {
  gptp::FollowUpMessage m;
  m.header.type = gptp::MessageType::kFollowUp;
  const auto bytes = gptp::serialize(gptp::Message{m});
  for (auto _ : state) {
    benchmark::DoNotOptimize(gptp::parse(bytes));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseFollowUp);

void BM_PhcRead(benchmark::State& state) {
  sim::Simulation sim(1);
  time::PhcModel model;
  time::PhcClock phc(sim, model, "bm");
  for (auto _ : state) {
    benchmark::DoNotOptimize(phc.read());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PhcRead);

void BM_SimulationPeriodicTasks(benchmark::State& state) {
  // End-to-end simulation throughput: N periodic no-op tasks at 8 Hz.
  for (auto _ : state) {
    sim::Simulation sim(1);
    for (int i = 0; i < 32; ++i) {
      sim.every(sim::SimTime(i), 125'000'000, [](sim::SimTime) {});
    }
    sim.run_until(sim::SimTime(10'000'000'000LL)); // 10 s
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 32 * 80);
}
BENCHMARK(BM_SimulationPeriodicTasks);

} // namespace

BENCHMARK_MAIN();
