// Shared plumbing for the reproduction benches: key=value CLI parsing and
// the standard header each binary prints.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "experiments/harness.hpp"
#include "experiments/report.hpp"
#include "obs/manifest.hpp"
#include "sweep/sweep_runner.hpp"
#include "util/config.hpp"
#include "util/log.hpp"
#include "util/str.hpp"

namespace tsn::bench {

inline util::Config parse_cli(int argc, char** argv) {
  util::Config cfg = util::Config::from_args(argc, argv);
  util::set_log_level(util::parse_log_level(cfg.get_string("log", "warn")));
  return cfg;
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n################################################################\n");
  std::printf("# %s\n", title.c_str());
  std::printf("# reproduces: %s\n", paper_ref.c_str());
  std::printf("################################################################\n");
}

inline experiments::ScenarioConfig scenario_from_cli(const util::Config& cli) {
  experiments::ScenarioConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  cfg.num_ecds = static_cast<std::size_t>(
      std::max<std::int64_t>(2, cli.get_int("num_ecds", (std::int64_t)cfg.num_ecds)));
  cfg.topology = experiments::parse_topology(cli.get_string("topology", "mesh"));
  cfg.num_domains = static_cast<std::size_t>(cli.get_int("num_domains", 0));
  cfg.partitions = static_cast<std::size_t>(cli.get_int("partitions", 0));
  cfg.sync_interval_ns = cli.get_int("sync_interval_ns", cfg.sync_interval_ns);
  cfg.validity_threshold_ns = cli.get_double("validity_threshold_ns", cfg.validity_threshold_ns);
  cfg.synctime_feed_forward = cli.get_bool("feed_forward", cfg.synctime_feed_forward);
  return cfg;
}

/// Binaries whose measurement path rides the single serial event loop
/// (attacker schedules, pcap, live injector event recording) call this
/// right after assembling their config: it rejects `partitions=` with
/// the reason instead of a mid-run logic_error from Scenario::sim().
inline void require_serial(const experiments::ScenarioConfig& cfg, const char* why) {
  if (cfg.partitions == 0) return;
  std::fprintf(stderr, "partitions=%zu is not supported by this binary: %s\n", cfg.partitions,
               why);
  std::exit(2);
}

/// `threads=` knob shared by every bench: 0 (default) = hardware
/// concurrency, 1 = run replicas inline exactly like the legacy
/// sequential loop. Negative values are treated as 0.
inline sweep::SweepOptions sweep_options_from_cli(const util::Config& cli) {
  sweep::SweepOptions opts;
  opts.threads = static_cast<std::size_t>(std::max<std::int64_t>(0, cli.get_int("threads", 0)));
  return opts;
}

/// `seeds=` knob: number of seed replicas (seed, seed+1, ...). Defaults
/// to 1 = today's single deterministic run; values below 1 are clamped
/// (every bench reports at least one replica).
inline std::size_t seeds_from_cli(const util::Config& cli) {
  return static_cast<std::size_t>(std::max<std::int64_t>(1, cli.get_int("seeds", 1)));
}

/// Assemble the per-run manifest every reproduction binary writes: which
/// scenario ran, on which code, what the instrumented subsystems counted.
/// `metrics` is the submission-order merge of the per-replica snapshots.
inline obs::RunManifest make_manifest(const std::string& tool,
                                      const experiments::ScenarioConfig& scenario,
                                      std::size_t replicas, std::size_t threads,
                                      obs::MetricsSnapshot metrics) {
  obs::RunManifest m;
  m.tool = tool;
  m.seed = scenario.seed;
  m.replicas = replicas;
  m.threads = threads;
  m.scenario = experiments::scenario_kv(scenario);
  m.metrics = std::move(metrics);
  return m;
}

/// Write the manifest to `manifest=` (default `<tool>_manifest.json`) and
/// tell the user where it went. `manifest=none` suppresses it.
inline void write_manifest_from_cli(const util::Config& cli, const obs::RunManifest& m) {
  const std::string path = cli.get_string("manifest", m.tool + "_manifest.json");
  if (path == "none") return;
  obs::write_manifest(path, m);
  std::printf("run manifest -> %s (git %s)\n", path.c_str(), obs::build_git_sha());
}

/// Sample-count-weighted combination of per-replica bound-holding
/// fractions (each replica holds against its own calibrated bound).
inline double combine_holding_fractions(const std::vector<double>& holds,
                                        const std::vector<std::size_t>& counts) {
  double held = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < holds.size(); ++i) {
    held += holds[i] * static_cast<double>(counts[i]);
    total += counts[i];
  }
  return total == 0 ? 1.0 : held / static_cast<double>(total);
}

} // namespace tsn::bench
