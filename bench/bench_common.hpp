// Shared plumbing for the reproduction benches: key=value CLI parsing and
// the standard header each binary prints.
#pragma once

#include <cstdio>
#include <string>

#include "experiments/harness.hpp"
#include "experiments/report.hpp"
#include "util/config.hpp"
#include "util/log.hpp"
#include "util/str.hpp"

namespace tsn::bench {

inline util::Config parse_cli(int argc, char** argv) {
  util::Config cfg = util::Config::from_args(argc, argv);
  util::set_log_level(util::parse_log_level(cfg.get_string("log", "warn")));
  return cfg;
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n################################################################\n");
  std::printf("# %s\n", title.c_str());
  std::printf("# reproduces: %s\n", paper_ref.c_str());
  std::printf("################################################################\n");
}

inline experiments::ScenarioConfig scenario_from_cli(const util::Config& cli) {
  experiments::ScenarioConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  cfg.sync_interval_ns = cli.get_int("sync_interval_ns", cfg.sync_interval_ns);
  cfg.validity_threshold_ns = cli.get_double("validity_threshold_ns", cfg.validity_threshold_ns);
  cfg.synctime_feed_forward = cli.get_bool("feed_forward", cfg.synctime_feed_forward);
  return cfg;
}

} // namespace tsn::bench
