// Fig. 4b: the distribution of the measured clock synchronization
// precision during the fault injection experiment (paper: avg 322 ns,
// std 421 ns, min 33 ns, max 10080 ns; plotted 0..1000 ns in 50 ns-ish
// bins with a long right tail).
//
// With the default seeds=1 this runs the same deterministic scenario as
// fig4a (same seed -> same run) and emits the histogram. seeds=N fans N
// replicas (seed, seed+1, ...) across threads= workers through the
// SweepRunner and emits the merged distribution; the merged output is
// identical whatever threads= is.
#include "bench_common.hpp"
#include "faults/injector.hpp"

using namespace tsn;
using namespace tsn::sim::literals;

namespace {

struct Replica {
  util::TimeSeries series;
  obs::MetricsSnapshot metrics;
  double pi_ns = 0;
  double gamma_ns = 0;
};

} // namespace

int main(int argc, char** argv) {
  const auto cli = bench::parse_cli(argc, argv);
  bench::banner("Precision distribution under fault injection",
                "Fig. 4b (DSN-S'23 sec. III-C)");

  const std::int64_t duration = cli.get_int("duration_h", 24) * 3'600'000'000'000LL;
  const auto run_replica = [&](const experiments::ScenarioConfig& cfg, std::size_t) -> Replica {
    experiments::Scenario scenario(cfg);
    experiments::ExperimentHarness harness(scenario);

    gptp::InstanceFaultModel fm;
    fm.p_tx_timestamp_timeout = cli.get_double("p_tx_timeout", 1.06e-3);
    fm.p_late_launch = cli.get_double("p_late_launch", 1.25e-4);
    for (std::size_t x = 0; x < scenario.num_ecds(); ++x) {
      for (std::size_t i = 0; i < 2; ++i) scenario.vm(x, i).set_fault_model(fm);
    }

    harness.bring_up();
    const auto cal = harness.calibrate();

    faults::InjectorConfig icfg;
    icfg.gm_kill_period_ns = cli.get_int("gm_kill_period_min", 30) * 60'000'000'000LL;
    icfg.standby_kills_per_hour = cli.get_double("standby_kills_per_hour", 0.65);
    faults::FaultInjector injector(scenario.sim(), scenario.ecd_ptrs(), icfg);
    injector.spare(&scenario.measurement_vm());
    injector.start();

    harness.run_measured(duration);
    return {scenario.probe().series(), scenario.metrics_snapshot(), cal.bound.pi_ns,
            cal.gamma_ns};
  };

  const auto base_cfg = bench::scenario_from_cli(cli);
  bench::require_serial(base_cfg, "injector events record into the live serial event log");
  sweep::SweepRunner runner(bench::sweep_options_from_cli(cli));
  const auto results =
      runner.run(sweep::seed_sweep(base_cfg, bench::seeds_from_cli(cli)), run_replica);

  std::vector<util::TimeSeries> series;
  std::vector<obs::MetricsSnapshot> metric_parts;
  for (const auto& r : results) {
    series.push_back(r.series);
    metric_parts.push_back(r.metrics);
  }
  const auto merged = sweep::merge_series(series);
  if (results.size() > 1) {
    std::printf("\n%zu seed replicas on %zu threads, %zu samples merged\n", results.size(),
                runner.threads(), merged.points().size());
  }

  experiments::print_precision_histogram(merged, cli.get_double("bin_ns", 50.0),
                                         cli.get_double("range_ns", 1000.0));

  const auto st = merged.stats();
  experiments::print_comparison_table(
      "Fig. 4b distribution statistics",
      {
          {"avg", "322 ns", util::format("%.0f ns", st.mean()), ""},
          {"std", "421 ns", util::format("%.0f ns", st.stddev()), ""},
          {"min", "33 ns", util::format("%.0f ns", st.min()), ""},
          {"max", "10080 ns", util::format("%.0f ns", st.max()),
           util::format("bound Pi+gamma = %.0f ns",
                        results.front().pi_ns + results.front().gamma_ns)},
          {"shape", "sub-us bulk, long right tail",
           st.mean() < 1000 && st.max() > 4 * st.mean() ? "same" : "DIFFERENT", ""},
      });

  experiments::dump_series_csv(merged, cli.get_string("csv", "fig4b_series.csv"));
  std::printf("\nseries CSV: %s\n", cli.get_string("csv", "fig4b_series.csv").c_str());

  auto manifest = bench::make_manifest("fig4b_precision_histogram", base_cfg, results.size(),
                                       runner.threads(), sweep::merge_metrics(metric_parts));
  manifest.extra["samples"] = std::to_string(merged.points().size());
  manifest.extra["avg_ns"] = util::format("%.1f", st.mean());
  manifest.extra["max_ns"] = util::format("%.1f", st.max());
  bench::write_manifest_from_cli(cli, manifest);
  return 0;
}
