// Ablation: sync interval sweep.
//
// The drift term of the precision bound is Gamma = 2 * rmax * S, so the
// bound scales linearly in S while the measured precision degrades more
// slowly (it is dominated by reading error/jitter until drift accumulation
// takes over). This bench sweeps S and reports measured vs bound; the five
// interval variants run through the SweepRunner (threads= knob) and the
// table prints in fixed interval order.
#include "bench_common.hpp"

using namespace tsn;
using namespace tsn::sim::literals;

int main(int argc, char** argv) {
  const auto cli = bench::parse_cli(argc, argv);
  bench::banner("Ablation: sync interval S sweep", "bound structure of sec. III-A3");

  std::vector<experiments::ScenarioConfig> configs;
  for (std::int64_t s_100us : {312, 625, 1250, 2500, 5000}) { // 31.25..500 ms
    experiments::ScenarioConfig cfg = bench::scenario_from_cli(cli);
    cfg.sync_interval_ns = s_100us * 100'000;
    configs.push_back(cfg);
  }

  struct Result {
    double gamma_us = 0, pi_us = 0, avg = 0, max = 0;
    obs::MetricsSnapshot metrics;
  };
  const std::int64_t duration = cli.get_int("duration_min", 5) * 60'000'000'000LL;
  sweep::SweepRunner runner(bench::sweep_options_from_cli(cli));
  const auto results = runner.run(
      configs, [&](const experiments::ScenarioConfig& cfg, std::size_t) {
        experiments::Scenario scenario(cfg);
        experiments::ExperimentHarness harness(scenario);
        harness.bring_up(240'000'000'000LL);
        const auto cal = harness.calibrate();
        harness.run_measured(duration);
        const auto st = scenario.probe().series().stats();
        return Result{cal.bound.drift_offset_ns / 1000.0, cal.bound.pi_ns / 1000.0, st.mean(),
                      st.max(), scenario.metrics_snapshot()};
      });

  std::vector<experiments::ComparisonRow> table;
  for (std::size_t i = 0; i < results.size(); ++i) {
    table.push_back({util::format("S = %.2f ms", static_cast<double>(configs[i].sync_interval_ns) / 1e6),
                     util::format("Gamma=%.2fus", results[i].gamma_us),
                     util::format("avg=%.0fns max=%.0fns", results[i].avg, results[i].max),
                     util::format("Pi=%.1fus", results[i].pi_us)});
  }
  experiments::print_comparison_table("Sync interval sweep (fault-free)", table);

  std::vector<obs::MetricsSnapshot> metric_parts;
  for (const auto& r : results) metric_parts.push_back(r.metrics);
  auto manifest = bench::make_manifest("ablation_sync_interval", configs.front(), results.size(),
                                       runner.threads(), sweep::merge_metrics(metric_parts));
  for (std::size_t i = 0; i < results.size(); ++i) {
    manifest.extra[util::format("pi_us_S%lld", (long long)configs[i].sync_interval_ns)] =
        util::format("%.2f", results[i].pi_us);
  }
  bench::write_manifest_from_cli(cli, manifest);
  return 0;
}
