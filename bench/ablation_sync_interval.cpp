// Ablation: sync interval sweep.
//
// The drift term of the precision bound is Gamma = 2 * rmax * S, so the
// bound scales linearly in S while the measured precision degrades more
// slowly (it is dominated by reading error/jitter until drift accumulation
// takes over). This bench sweeps S and reports measured vs bound.
#include "bench_common.hpp"

using namespace tsn;
using namespace tsn::sim::literals;

int main(int argc, char** argv) {
  const auto cli = bench::parse_cli(argc, argv);
  bench::banner("Ablation: sync interval S sweep", "bound structure of sec. III-A3");

  const std::int64_t intervals_ms[] = {3125, 625, 125, 250, 500}; // 31.25..500 ms (x100 units)
  std::vector<experiments::ComparisonRow> table;
  const std::int64_t duration = cli.get_int("duration_min", 5) * 60'000'000'000LL;

  for (std::int64_t s_100us : {312, 625, 1250, 2500, 5000}) {
    const std::int64_t S = s_100us * 100'000; // ns
    experiments::ScenarioConfig cfg = bench::scenario_from_cli(cli);
    cfg.sync_interval_ns = S;
    experiments::Scenario scenario(cfg);
    experiments::ExperimentHarness harness(scenario);
    harness.bring_up(240'000'000'000LL);
    const auto cal = harness.calibrate();
    harness.run_measured(duration);
    const auto st = scenario.probe().series().stats();
    table.push_back({util::format("S = %.2f ms", static_cast<double>(S) / 1e6),
                     util::format("Gamma=%.2fus", cal.bound.drift_offset_ns / 1000.0),
                     util::format("avg=%.0fns max=%.0fns", st.mean(), st.max()),
                     util::format("Pi=%.1fus", cal.bound.pi_ns / 1000.0)});
  }
  (void)intervals_ms;
  experiments::print_comparison_table("Sync interval sweep (fault-free)", table);
  return 0;
}
