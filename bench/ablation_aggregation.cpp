// Ablation: aggregation function under a single Byzantine GM.
//
// DESIGN.md calls out the FTA choice; this bench compares it against the
// median and the plain mean (no fault tolerance) on the same scenario with
// one compromised GM (-24 us). Expected shape: FTA and median mask the
// attacker, the mean is dragged by ~ -24/4 us and violates the bound.
#include "bench_common.hpp"

using namespace tsn;
using namespace tsn::sim::literals;

int main(int argc, char** argv) {
  const auto cli = bench::parse_cli(argc, argv);
  bench::banner("Ablation: FTA vs median vs mean under one Byzantine GM",
                "design choice behind sec. II-B");

  struct Row {
    const char* name;
    core::AggregationMethod method;
    double avg = 0, max = 0, holds = 0;
  };
  Row rows[] = {
      {"fta (paper)", core::AggregationMethod::kFta},
      {"median", core::AggregationMethod::kMedian},
      {"mean (no fault tolerance)", core::AggregationMethod::kMean},
  };

  const std::int64_t duration = cli.get_int("duration_min", 10) * 60'000'000'000LL;
  for (auto& row : rows) {
    experiments::ScenarioConfig cfg = bench::scenario_from_cli(cli);
    cfg.aggregation = row.method;
    // Disable validity exclusion so the aggregation function alone decides.
    cfg.validity_threshold_ns = 1e9;
    experiments::Scenario scenario(cfg);
    experiments::ExperimentHarness harness(scenario);
    harness.bring_up();
    const auto cal = harness.calibrate();
    scenario.gm_vm(2).compromise(-24'000);
    harness.run_measured(duration);
    const auto st = scenario.probe().series().stats();
    row.avg = st.mean();
    row.max = st.max();
    row.holds = experiments::bound_holding_fraction(scenario.probe().series(), cal.bound.pi_ns,
                                                    cal.gamma_ns);
  }

  std::vector<experiments::ComparisonRow> table;
  for (const auto& row : rows) {
    table.push_back({row.name,
                     row.method == core::AggregationMethod::kMean ? "breaks" : "masks",
                     util::format("avg=%.0fns max=%.0fns holds=%.0f%%", row.avg, row.max,
                                  100 * row.holds),
                     ""});
  }
  experiments::print_comparison_table("Aggregation ablation, 1 Byzantine GM of 4", table);

  const bool ok = rows[0].holds == 1.0 && rows[1].holds == 1.0 && rows[2].avg > 3 * rows[0].avg;
  std::printf("\nexpected shape (FTA/median mask, mean degrades): %s\n", ok ? "OK" : "DIFFERENT");
  return ok ? 0 : 1;
}
