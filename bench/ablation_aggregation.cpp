// Ablation: aggregation function under a single Byzantine GM.
//
// DESIGN.md calls out the FTA choice; this bench compares it against the
// median and the plain mean (no fault tolerance) on the same scenario with
// one compromised GM (-24 us). Expected shape: FTA and median mask the
// attacker, the mean is dragged by ~ -24/4 us and violates the bound.
//
// The three method variants run through the SweepRunner (threads= knob)
// and the table prints in fixed method order.
#include "bench_common.hpp"

using namespace tsn;
using namespace tsn::sim::literals;

int main(int argc, char** argv) {
  const auto cli = bench::parse_cli(argc, argv);
  bench::banner("Ablation: FTA vs median vs mean under one Byzantine GM",
                "design choice behind sec. II-B");

  struct Variant {
    const char* name;
    core::AggregationMethod method;
  };
  const Variant variants[] = {
      {"fta (paper)", core::AggregationMethod::kFta},
      {"median", core::AggregationMethod::kMedian},
      {"mean (no fault tolerance)", core::AggregationMethod::kMean},
  };

  std::vector<experiments::ScenarioConfig> configs;
  for (const auto& v : variants) {
    experiments::ScenarioConfig cfg = bench::scenario_from_cli(cli);
    cfg.aggregation = v.method;
    // Disable validity exclusion so the aggregation function alone decides.
    cfg.validity_threshold_ns = 1e9;
    configs.push_back(cfg);
  }

  struct Result {
    double avg = 0, max = 0, holds = 0;
    obs::MetricsSnapshot metrics;
  };
  const std::int64_t duration = cli.get_int("duration_min", 10) * 60'000'000'000LL;
  sweep::SweepRunner runner(bench::sweep_options_from_cli(cli));
  const auto results = runner.run(
      configs, [&](const experiments::ScenarioConfig& cfg, std::size_t) {
        experiments::Scenario scenario(cfg);
        experiments::ExperimentHarness harness(scenario);
        harness.bring_up();
        const auto cal = harness.calibrate();
        scenario.gm_vm(2).compromise(-24'000);
        harness.run_measured(duration);
        const auto st = scenario.probe().series().stats();
        return Result{st.mean(), st.max(),
                      experiments::bound_holding_fraction(scenario.probe().series(),
                                                          cal.bound.pi_ns, cal.gamma_ns),
                      scenario.metrics_snapshot()};
      });

  std::vector<experiments::ComparisonRow> table;
  for (std::size_t i = 0; i < results.size(); ++i) {
    table.push_back({variants[i].name,
                     variants[i].method == core::AggregationMethod::kMean ? "breaks" : "masks",
                     util::format("avg=%.0fns max=%.0fns holds=%.0f%%", results[i].avg,
                                  results[i].max, 100 * results[i].holds),
                     ""});
  }
  experiments::print_comparison_table("Aggregation ablation, 1 Byzantine GM of 4", table);

  const bool ok = results[0].holds == 1.0 && results[1].holds == 1.0 &&
                  results[2].avg > 3 * results[0].avg;
  std::printf("\nexpected shape (FTA/median mask, mean degrades): %s\n", ok ? "OK" : "DIFFERENT");

  std::vector<obs::MetricsSnapshot> metric_parts;
  for (const auto& r : results) metric_parts.push_back(r.metrics);
  auto manifest = bench::make_manifest("ablation_aggregation", configs.front(), results.size(),
                                       runner.threads(), sweep::merge_metrics(metric_parts));
  for (std::size_t i = 0; i < results.size(); ++i) {
    manifest.extra[util::format("holds_%zu", i)] = util::format("%.6f", results[i].holds);
  }
  bench::write_manifest_from_cli(cli, manifest);
  return ok ? 0 : 1;
}
