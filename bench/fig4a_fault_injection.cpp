// Fig. 4a + section III-C scalars: the 24 h fault injection experiment.
//
// The fault injection tool shuts down GM-hosting VMs sequentially across
// the ECDs (one per 30 min -> 48 GM failures/24 h) and redundant VMs at a
// bounded random rate (-> ~46 more, ~94 fail-silent VMs total). Transient
// ptp4l software faults (tx-timestamp timeouts, launch deadline misses)
// are injected at rates calibrated to the paper's observations (2992 and
// 347 in 24 h). The measured precision must stay within Pi + gamma
// throughout; the dependent clock's takeover keeps every node serving
// CLOCK_SYNCTIME.
//
// seeds=N runs N independent replicas (seed, seed+1, ...) through the
// SweepRunner on threads= workers and reports sums/merged series; each
// replica's bound check uses its own calibration. The default seeds=1
// reproduces the paper's single 24 h run exactly.
#include "bench_common.hpp"
#include "faults/injector.hpp"

using namespace tsn;
using namespace tsn::sim::literals;

namespace {

struct Replica {
  util::TimeSeries series;
  experiments::EventLog events;
  experiments::ExperimentHarness::Calibration cal;
  obs::MetricsSnapshot metrics;
  std::uint64_t total_kills = 0;
  std::uint64_t gm_kills = 0;
  std::uint64_t tx_timeouts = 0;
  std::uint64_t deadline_misses = 0;
  std::size_t takeovers = 0;
  double holds = 0;
};

} // namespace

int main(int argc, char** argv) {
  const auto cli = bench::parse_cli(argc, argv);
  bench::banner("24h fault injection: precision under fail-silent faults",
                "Fig. 4a + Table scalars (DSN-S'23 sec. III-C)");

  const std::int64_t duration = cli.get_int("duration_h", 24) * 3'600'000'000'000LL;
  const auto run_replica = [&](const experiments::ScenarioConfig& cfg, std::size_t) -> Replica {
    experiments::Scenario scenario(cfg);
    experiments::ExperimentHarness harness(scenario);

    // Transient SW fault rates: the paper observed 2992 tx-timestamp
    // timeouts and 347 deadline misses over 24 h across all instances.
    // Syncs sent: 4 GMs * 8 Hz * 86400 s ~ 2.76M; bridges re-send per hop.
    gptp::InstanceFaultModel fm;
    fm.p_tx_timestamp_timeout = cli.get_double("p_tx_timeout", 1.06e-3);
    fm.p_late_launch = cli.get_double("p_late_launch", 1.25e-4);
    for (std::size_t x = 0; x < scenario.num_ecds(); ++x) {
      for (std::size_t i = 0; i < 2; ++i) scenario.vm(x, i).set_fault_model(fm);
    }

    harness.bring_up();
    const auto cal = harness.calibrate();

    faults::InjectorConfig icfg;
    icfg.gm_kill_period_ns = cli.get_int("gm_kill_period_min", 30) * 60'000'000'000LL;
    icfg.gm_downtime_ns = cli.get_int("gm_downtime_s", 90) * 1'000'000'000LL;
    icfg.standby_kills_per_hour = cli.get_double("standby_kills_per_hour", 0.65);
    icfg.standby_downtime_ns = cli.get_int("standby_downtime_s", 90) * 1'000'000'000LL;
    faults::FaultInjector injector(scenario.sim(), scenario.ecd_ptrs(), icfg);
    injector.spare(&scenario.measurement_vm());
    injector.on_event = [&](const faults::InjectionEvent& ev) {
      harness.events().record(ev.at_ns,
                              ev.is_reboot ? experiments::EventKind::kVmReboot
                                           : experiments::EventKind::kVmFailure,
                              ev.vm, ev.was_gm ? "gm" : "standby");
    };
    injector.start();

    harness.run_measured(duration);

    Replica out;
    out.series = scenario.probe().series();
    out.events = harness.events();
    out.cal = cal;
    out.total_kills = injector.stats().total_kills;
    out.gm_kills = injector.stats().gm_kills;
    out.tx_timeouts = harness.total_tx_timestamp_timeouts();
    out.deadline_misses = harness.total_deadline_misses();
    out.takeovers = harness.events().count(experiments::EventKind::kTakeover);
    out.holds = experiments::bound_holding_fraction(out.series, cal.bound.pi_ns, cal.gamma_ns);
    out.metrics = scenario.metrics_snapshot();
    return out;
  };

  const auto base_cfg = bench::scenario_from_cli(cli);
  bench::require_serial(base_cfg, "injector events record into the live serial event log");
  sweep::SweepRunner runner(bench::sweep_options_from_cli(cli));
  const auto results =
      runner.run(sweep::seed_sweep(base_cfg, bench::seeds_from_cli(cli)), run_replica);

  experiments::print_calibration(results.front().cal, 4120 - 600, 9188 - 1500, 11'420, 856);

  std::vector<util::TimeSeries> series;
  std::vector<experiments::EventLog> logs;
  std::vector<obs::MetricsSnapshot> metric_parts;
  std::vector<double> holds_parts;
  std::vector<std::size_t> counts;
  Replica sums;
  for (const auto& r : results) {
    series.push_back(r.series);
    logs.push_back(r.events);
    metric_parts.push_back(r.metrics);
    holds_parts.push_back(r.holds);
    counts.push_back(r.series.points().size());
    sums.total_kills += r.total_kills;
    sums.gm_kills += r.gm_kills;
    sums.tx_timeouts += r.tx_timeouts;
    sums.deadline_misses += r.deadline_misses;
    sums.takeovers += r.takeovers;
  }
  const auto merged = sweep::merge_series(series);
  const auto merged_events = sweep::merge_event_logs(logs);
  const double holds = bench::combine_holding_fractions(holds_parts, counts);
  if (results.size() > 1) {
    std::printf("\n%zu seed replicas on %zu threads; counts below are sums across replicas\n",
                results.size(), runner.threads());
  }

  const auto& cal = results.front().cal;
  experiments::print_precision_series(merged, cal.bound.pi_ns, cal.gamma_ns,
                                      cli.get_int("bucket_s", 1800) * 1'000'000'000LL);

  const auto st = merged.stats();
  const double hours =
      static_cast<double>(duration) / 3.6e12 * static_cast<double>(results.size());
  experiments::print_comparison_table(
      "Section III-C results (scaled to the configured duration)",
      {
          {"duration", "24 h", util::format("%.1f h", hours), ""},
          {"fail-silent clock sync VMs", "94",
           util::format("%llu", (unsigned long long)sums.total_kills), ""},
          {"of which GM failures", "48",
           util::format("%llu", (unsigned long long)sums.gm_kills), ""},
          {"CLOCK_SYNCTIME takeovers", "(Fig. 5 stars)",
           util::format("%zu", sums.takeovers), ""},
          {"tx timestamp timeouts", "2992",
           util::format("%llu", (unsigned long long)sums.tx_timeouts),
           "igb driver issue, modelled stochastically"},
          {"tx deadline misses", "347",
           util::format("%llu", (unsigned long long)sums.deadline_misses), ""},
          {"avg precision", "322 ns", util::format("%.0f ns", st.mean()), ""},
          {"std precision", "421 ns", util::format("%.0f ns", st.stddev()), ""},
          {"min precision", "33 ns", util::format("%.0f ns", st.min()), ""},
          {"max precision", "10080 ns", util::format("%.0f ns", st.max()), ""},
          {"eq.(3.3) holds", "always", util::format("%.2f%% of samples", 100.0 * holds), ""},
      });

  experiments::dump_aggregated_csv(merged, 120_s, cli.get_string("csv", "fig4a_aggregated.csv"));
  experiments::dump_events_csv(merged_events, cli.get_string("events_csv", "fig4a_events.csv"));
  std::printf("\nCSV: %s, %s\n", cli.get_string("csv", "fig4a_aggregated.csv").c_str(),
              cli.get_string("events_csv", "fig4a_events.csv").c_str());

  auto manifest = bench::make_manifest("fig4a_fault_injection", base_cfg, results.size(),
                                       runner.threads(), sweep::merge_metrics(metric_parts));
  manifest.extra["duration_h"] = util::format("%g", hours);
  manifest.extra["total_kills"] = std::to_string(sums.total_kills);
  manifest.extra["takeovers"] = std::to_string(sums.takeovers);
  manifest.extra["holding_fraction"] = util::format("%.6f", holds);
  bench::write_manifest_from_cli(cli, manifest);
  return holds == 1.0 ? 0 : 1;
}
