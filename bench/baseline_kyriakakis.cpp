// Baseline comparison: Kyriakakis et al. (ISORC'21) client-only
// multi-domain aggregation vs the paper's architecture.
//
// Section I of the paper criticizes the prior end-system design: it
// "conceptually neglect[s] the problem of (initially) synchronizing GM
// clocks of different domains with each other", limiting it "to PTP
// clients only" and "prohibit[ing] locating PTP GM clocks on physically
// separated nodes that do not share a common time source, thus breaking
// the Byzantine fault tolerance ... in real-world systems".
//
// This bench runs both designs on the identical physically-separated
// testbed and reports:
//   * client-to-client precision (both designs keep clients together), and
//   * GM clock disagreement (baseline GMs drift apart unboundedly ->
//     no common timebase, FTA agreement voting loses all meaning).
#include "bench_common.hpp"

using namespace tsn;
using namespace tsn::sim::literals;

namespace {

struct Outcome {
  double client_avg_ns = 0;
  double client_max_ns = 0;
  double gm_disagreement_ns = 0;
  obs::MetricsSnapshot metrics;
};

Outcome run(bool gm_mutual_sync, const util::Config& cli) {
  experiments::ScenarioConfig cfg = tsn::bench::scenario_from_cli(cli);
  cfg.gm_mutual_sync = gm_mutual_sync;
  experiments::Scenario scenario(cfg);
  experiments::ExperimentHarness harness(scenario);
  harness.bring_up();
  harness.calibrate();
  harness.run_measured(cli.get_int("duration_min", 30) * 60'000'000'000LL);
  Outcome out;
  out.client_avg_ns = scenario.probe().series().stats().mean();
  out.client_max_ns = scenario.probe().series().stats().max();
  out.gm_disagreement_ns = scenario.gm_clock_disagreement_ns();
  out.metrics = scenario.metrics_snapshot();
  return out;
}

} // namespace

int main(int argc, char** argv) {
  const auto cli = tsn::bench::parse_cli(argc, argv);
  tsn::bench::banner("Baseline: Kyriakakis et al. client-only aggregation",
                     "sec. I related-work comparison");

  std::printf("\nrunning the paper's architecture (GMs mutually synchronized)...\n");
  const Outcome paper = run(true, cli);
  std::printf("running the baseline (GMs free-run, clients aggregate)...\n");
  const Outcome baseline = run(false, cli);

  experiments::print_comparison_table(
      "Both architectures after the same run on physically separated nodes",
      {
          {"client precision avg", util::format("%.0f ns", paper.client_avg_ns),
           util::format("%.0f ns", baseline.client_avg_ns), "paper vs baseline"},
          {"client precision max", util::format("%.0f ns", paper.client_max_ns),
           util::format("%.0f ns", baseline.client_max_ns), ""},
          {"GM clock disagreement", util::format("%.3g ns", paper.gm_disagreement_ns),
           util::format("%.3g ns", baseline.gm_disagreement_ns),
           "baseline GMs share no timebase"},
      });

  const bool shape_ok = paper.gm_disagreement_ns < 5'000.0 &&
                        baseline.gm_disagreement_ns > 20.0 * paper.gm_disagreement_ns;
  std::printf("\nexpected shape: the paper's GMs agree to sub-us while the baseline's\n"
              "drift apart unboundedly (here: %.1fx worse after this run), so a\n"
              "Byzantine GM cannot be voted against any common reference -- the\n"
              "baseline's Byzantine fault tolerance does not survive physically\n"
              "separated GMs. shape: %s\n",
              baseline.gm_disagreement_ns / std::max(paper.gm_disagreement_ns, 1.0),
              shape_ok ? "OK" : "DIFFERENT");

  auto manifest =
      tsn::bench::make_manifest("baseline_kyriakakis", tsn::bench::scenario_from_cli(cli), 2, 1,
                                obs::merge_snapshots({paper.metrics, baseline.metrics}));
  manifest.extra["gm_disagreement_ns_paper"] = util::format("%.1f", paper.gm_disagreement_ns);
  manifest.extra["gm_disagreement_ns_baseline"] =
      util::format("%.1f", baseline.gm_disagreement_ns);
  tsn::bench::write_manifest_from_cli(cli, manifest);
  return shape_ok ? 0 : 1;
}
