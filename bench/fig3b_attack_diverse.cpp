// Fig. 3b: the same attack as Fig. 3a but with DIVERSE Linux kernel
// versions -- only virtual GM c41 runs the exploitable 4.19.1.
//
// The first exploit succeeds and is masked by the FTA; the attempt on c11
// fails (patched kernel), so the measured precision never violates the
// bound: OS diversification hardens Byzantine fault tolerance.
//
// seeds=N repeats the experiment over N seeds through the SweepRunner
// (threads= workers); every replica must mask the attack for exit code 0.
#include "bench_common.hpp"
#include "faults/attacker.hpp"

using namespace tsn;
using namespace tsn::sim::literals;

namespace {

struct Replica {
  util::TimeSeries series;
  experiments::ExperimentHarness::Calibration cal;
  obs::MetricsSnapshot metrics;
  std::size_t exploits = 0;
  double holds = 0;
};

} // namespace

int main(int argc, char** argv) {
  const auto cli = bench::parse_cli(argc, argv);
  bench::banner("Cyber-resilience attack, diverse kernels",
                "Fig. 3b (DSN-S'23 sec. III-B)");

  const std::int64_t duration = cli.get_int("duration_min", 60) * 60'000'000'000LL;
  const auto run_replica = [&](const experiments::ScenarioConfig& base, std::size_t) -> Replica {
    experiments::ScenarioConfig cfg = base;
    cfg.gm_kernels = {"5.4.0", "5.10.0", "5.15.0", "4.19.1"}; // only c41 vulnerable
    experiments::Scenario scenario(cfg);
    experiments::ExperimentHarness harness(scenario);
    harness.bring_up();
    const auto cal = harness.calibrate();

    const std::int64_t t0 = scenario.sim().now().ns();
    faults::Attacker attacker(scenario.sim(), faults::KernelVulnDb::with_defaults());
    attacker.add_step({t0 + 21_min + 42_s, &scenario.gm_vm(3)}); // c41: succeeds
    attacker.add_step({t0 + 31_min + 52_s, &scenario.gm_vm(0)}); // c11: fails
    attacker.start();

    harness.run_measured(duration);

    Replica out;
    out.series = scenario.probe().series();
    out.cal = cal;
    out.exploits = attacker.successful_exploits();
    out.holds = experiments::bound_holding_fraction(out.series, cal.bound.pi_ns, cal.gamma_ns);
    out.metrics = scenario.metrics_snapshot();
    return out;
  };

  const auto base_cfg = bench::scenario_from_cli(cli);
  bench::require_serial(base_cfg, "the attacker schedule mutates GM VMs from the serial loop");
  sweep::SweepRunner runner(bench::sweep_options_from_cli(cli));
  const auto results =
      runner.run(sweep::seed_sweep(base_cfg, bench::seeds_from_cli(cli)), run_replica);

  experiments::print_calibration(results.front().cal, 4120, 9188, 12'636, 1313);

  std::vector<util::TimeSeries> series;
  std::vector<obs::MetricsSnapshot> metric_parts;
  std::size_t exploits = 0;
  std::size_t held_replicas = 0;
  for (const auto& r : results) {
    series.push_back(r.series);
    metric_parts.push_back(r.metrics);
    exploits += r.exploits;
    if (r.holds == 1.0) ++held_replicas;
  }
  const auto merged = sweep::merge_series(series);
  if (results.size() > 1) {
    std::printf("\n%zu seed replicas on %zu threads; bound held in %zu/%zu\n", results.size(),
                runner.threads(), held_replicas, results.size());
  }

  const auto& cal = results.front().cal;
  experiments::print_precision_series(merged, cal.bound.pi_ns, cal.gamma_ns,
                                      cli.get_int("bucket_s", 120) * 1'000'000'000LL);

  const bool all_held = held_replicas == results.size();
  const auto st = merged.stats();
  experiments::print_comparison_table(
      "Fig. 3b outcome",
      {
          {"exploits succeeded", util::format("%zu (only c41)", results.size()),
           util::format("%zu", exploits), "c11 kernel is patched"},
          {"attack on c41 masked", "yes", "yes", "FTA tolerates f=1"},
          {"bound ever violated", "no", all_held ? "no" : "YES",
           "diversification preserved BFT"},
          {"avg precision", "sub-us", util::format("%.0f ns", st.mean()), ""},
      });

  experiments::dump_series_csv(merged, cli.get_string("csv", "fig3b_series.csv"));
  std::printf("\nseries CSV: %s\n", cli.get_string("csv", "fig3b_series.csv").c_str());

  auto manifest = bench::make_manifest("fig3b_attack_diverse", base_cfg, results.size(),
                                       runner.threads(), sweep::merge_metrics(metric_parts));
  manifest.extra["exploits"] = std::to_string(exploits);
  manifest.extra["held_replicas"] = std::to_string(held_replicas);
  bench::write_manifest_from_cli(cli, manifest);
  return (exploits == results.size() && all_held) ? 0 : 1;
}
