// Fig. 3b: the same attack as Fig. 3a but with DIVERSE Linux kernel
// versions -- only virtual GM c41 runs the exploitable 4.19.1.
//
// The first exploit succeeds and is masked by the FTA; the attempt on c11
// fails (patched kernel), so the measured precision never violates the
// bound: OS diversification hardens Byzantine fault tolerance.
#include "bench_common.hpp"
#include "faults/attacker.hpp"

using namespace tsn;
using namespace tsn::sim::literals;

int main(int argc, char** argv) {
  const auto cli = bench::parse_cli(argc, argv);
  bench::banner("Cyber-resilience attack, diverse kernels",
                "Fig. 3b (DSN-S'23 sec. III-B)");

  experiments::ScenarioConfig cfg = bench::scenario_from_cli(cli);
  cfg.gm_kernels = {"5.4.0", "5.10.0", "5.15.0", "4.19.1"}; // only c41 vulnerable
  experiments::Scenario scenario(cfg);
  experiments::ExperimentHarness harness(scenario);
  harness.bring_up();
  const auto cal = harness.calibrate();
  experiments::print_calibration(cal, 4120, 9188, 12'636, 1313);

  const std::int64_t t0 = scenario.sim().now().ns();
  faults::Attacker attacker(scenario.sim(), faults::KernelVulnDb::with_defaults());
  attacker.add_step({t0 + 21_min + 42_s, &scenario.gm_vm(3)}); // c41: succeeds
  attacker.add_step({t0 + 31_min + 52_s, &scenario.gm_vm(0)}); // c11: fails
  attacker.start();

  const std::int64_t duration = cli.get_int("duration_min", 60) * 60'000'000'000LL;
  harness.run_measured(duration);

  experiments::print_precision_series(scenario.probe().series(), cal.bound.pi_ns, cal.gamma_ns,
                                      cli.get_int("bucket_s", 120) * 1'000'000'000LL);

  const double holds = experiments::bound_holding_fraction(scenario.probe().series(),
                                                           cal.bound.pi_ns, cal.gamma_ns);
  const auto st = scenario.probe().series().stats();
  experiments::print_comparison_table(
      "Fig. 3b outcome",
      {
          {"exploits succeeded", "1 (only c41)",
           util::format("%zu", attacker.successful_exploits()), "c11 kernel is patched"},
          {"attack on c41 masked", "yes", "yes", "FTA tolerates f=1"},
          {"bound ever violated", "no", holds < 1.0 ? "YES" : "no",
           "diversification preserved BFT"},
          {"avg precision", "sub-us", util::format("%.0f ns", st.mean()), ""},
      });

  experiments::dump_series_csv(scenario.probe().series(),
                               cli.get_string("csv", "fig3b_series.csv"));
  std::printf("\nseries CSV: %s\n", cli.get_string("csv", "fig3b_series.csv").c_str());
  return (attacker.successful_exploits() == 1 && holds == 1.0) ? 0 : 1;
}
