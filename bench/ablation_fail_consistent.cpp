// Ablation: fail-silent (f+1 = 2 VMs, the paper's hardware-constrained
// setup) vs fail-consistent (2f+1 = 3 VMs, the paper's full design).
//
// A consistently faulty clock synchronization VM publishes a plausible but
// wrong CLOCK_SYNCTIME. With two VMs the monitor cannot tell (no quorum):
// co-located applications silently consume the wrong time. With three VMs
// the majority vote evicts the faulty publisher within a couple of monitor
// periods.
#include "bench_common.hpp"
#include "hv/ecd.hpp"

using namespace tsn;
using namespace tsn::sim::literals;

namespace {

time::PhcModel nic_phc() {
  time::PhcModel m;
  // In deployment the VMs' NIC clocks are gPTP-synchronized to within the
  // bound Pi; this bench runs the node standalone, so near-ideal
  // oscillators stand in for that synchronization.
  m.oscillator.max_drift_ppm = 0.05;
  m.oscillator.wander_sigma_ppm = 0.0005;
  return m;
}

hv::ClockSyncVmConfig vm_cfg(const std::string& name, std::uint64_t mac) {
  hv::ClockSyncVmConfig cfg;
  cfg.name = name;
  cfg.mac = net::MacAddress::from_u64(mac);
  cfg.phc = nic_phc();
  cfg.domains = {1, 2, 3, 4};
  return cfg;
}

struct Outcome {
  bool detected = false;
  double detection_latency_ms = -1;
  double residual_error_ns = 0; ///< CLOCK_SYNCTIME error after the fault
  obs::MetricsSnapshot metrics;
};

Outcome run(std::size_t vm_count, std::uint64_t seed) {
  sim::Simulation sim(seed);
  obs::Observability obs; // Ecd-level bench: no Scenario, so own the bundle
  hv::Ecd ecd(sim, {"ecd", nic_phc(), {}}, obs.context());
  for (std::size_t i = 0; i < vm_count; ++i) {
    ecd.add_clock_sync_vm(vm_cfg(util::format("vm%zu", i), 0x50 + i));
  }
  ecd.start();
  sim.run_until(sim::SimTime(5_s));

  Outcome out;
  std::int64_t fault_time = sim.now().ns();
  ecd.monitor().on_vote_exclusion = [&](std::size_t idx) {
    if (idx == 0 && !out.detected) {
      out.detected = true;
      out.detection_latency_ms =
          static_cast<double>(sim.now().ns() - fault_time) / 1e6;
    }
  };
  ecd.vm(0).updater()->set_param_corruption(50'000); // +50 us, consistently
  sim.run_until(sim::SimTime(15_s));

  // What do co-located application VMs read now, vs. a healthy reference?
  const auto st = ecd.read_synctime();
  const auto ref = ecd.vm(vm_count - 1).nic().phc().read();
  out.residual_error_ns = st ? static_cast<double>(*st - ref) : -1;
  obs.metrics.gauge("sim.events_executed")
      .set(static_cast<double>(sim.events_executed()));
  out.metrics = obs.metrics.snapshot();
  return out;
}

} // namespace

int main(int argc, char** argv) {
  const auto cli = tsn::bench::parse_cli(argc, argv);
  tsn::bench::banner("Ablation: fail-silent (2 VMs) vs fail-consistent (3 VMs)",
                     "sec. II-A fault hypotheses");

  const Outcome two = run(2, cli.get_int("seed", 3));
  const Outcome three = run(3, cli.get_int("seed", 3));

  experiments::print_comparison_table(
      "A VM publishes consistently wrong CLOCK_SYNCTIME (+50 us)",
      {
          {"detection (2 VMs, fail-silent)", "impossible (no quorum)",
           two.detected ? "DETECTED?!" : "not detected", "paper's 2-NIC constraint"},
          {"app-visible clock error (2 VMs)", "~50000 ns",
           util::format("%.0f ns", two.residual_error_ns), "apps consume wrong time"},
          {"detection (3 VMs, 2f+1 vote)", "yes",
           three.detected ? util::format("yes, after %.0f ms", three.detection_latency_ms)
                          : "NOT DETECTED",
           "monitor majority vote"},
          {"app-visible clock error (3 VMs)", "~0 ns",
           util::format("%.0f ns", three.residual_error_ns), "takeover to a healthy VM"},
      });

  const bool ok = !two.detected && std::abs(two.residual_error_ns - 50'000) < 10'000 &&
                  three.detected && std::abs(three.residual_error_ns) < 10'000;
  std::printf("\nexpected shape (2 VMs blind, 3 VMs detect and recover): %s\n",
              ok ? "OK" : "DIFFERENT");

  // No ScenarioConfig here (Ecd-level bench), so assemble the manifest by hand.
  obs::RunManifest manifest;
  manifest.tool = "ablation_fail_consistent";
  manifest.seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));
  manifest.replicas = 2;
  manifest.threads = 1;
  manifest.scenario["vm_counts"] = "2,3";
  manifest.scenario["param_corruption_ns"] = "50000";
  manifest.metrics = obs::merge_snapshots({two.metrics, three.metrics});
  manifest.extra["detected_2vm"] = two.detected ? "1" : "0";
  manifest.extra["detected_3vm"] = three.detected ? "1" : "0";
  manifest.extra["residual_ns_2vm"] = util::format("%.1f", two.residual_error_ns);
  manifest.extra["residual_ns_3vm"] = util::format("%.1f", three.residual_error_ns);
  bench::write_manifest_from_cli(cli, manifest);
  return ok ? 0 : 1;
}
