// Global operator-new counter for the microbenchmarks.
//
// The zero-allocation contract of the hot paths (event dispatch, frame
// forwarding) is enforced observationally: benchmarks diff this counter
// around their steady-state loop and report allocs_per_iter, which must
// read 0.000 for the pooled paths. Linked into the bench binary only —
// the library itself never sees the hook.
//
// Under ASan/TSan the sanitizer runtime interposes the allocator and
// allocates internally, so the hook deactivates itself and the counters
// are suppressed rather than reporting noise.
#pragma once

#include <cstdint>

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define TSN_BENCH_ALLOC_HOOK_DISABLED 1
#endif
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define TSN_BENCH_ALLOC_HOOK_DISABLED 1
#endif
#endif

namespace tsn::bench {

/// True when the replacement operator new is compiled in and counting.
bool alloc_hook_active();

/// Number of operator new / new[] calls since process start (0 when the
/// hook is inactive).
std::uint64_t alloc_count();

} // namespace tsn::bench
