// Fig. 5: a one-hour zoom of the fault injection experiment with event
// annotations -- GM/redundant VM failures (triangles), takeovers of
// CLOCK_SYNCTIME maintenance (stars), and transient ptp4l application
// faults (crosses). The window is centred on the interval containing the
// maximum measured precision, as the paper centres on its 10.08 us spike.
#include "bench_common.hpp"
#include "faults/injector.hpp"

using namespace tsn;
using namespace tsn::sim::literals;

int main(int argc, char** argv) {
  const auto cli = bench::parse_cli(argc, argv);
  bench::banner("Fault-injection zoom with event annotations",
                "Fig. 5 (DSN-S'23 sec. III-C)");

  experiments::ScenarioConfig cfg = bench::scenario_from_cli(cli);
  bench::require_serial(cfg, "injector events record into the live serial event log");
  experiments::Scenario scenario(cfg);
  experiments::ExperimentHarness harness(scenario);

  gptp::InstanceFaultModel fm;
  fm.p_tx_timestamp_timeout = cli.get_double("p_tx_timeout", 1.06e-3);
  fm.p_late_launch = cli.get_double("p_late_launch", 1.25e-4);
  for (std::size_t x = 0; x < scenario.num_ecds(); ++x) {
    for (std::size_t i = 0; i < 2; ++i) scenario.vm(x, i).set_fault_model(fm);
  }

  harness.bring_up();
  const auto cal = harness.calibrate();

  faults::InjectorConfig icfg;
  icfg.gm_kill_period_ns = cli.get_int("gm_kill_period_min", 30) * 60'000'000'000LL;
  icfg.standby_kills_per_hour = cli.get_double("standby_kills_per_hour", 0.65);
  faults::FaultInjector injector(scenario.sim(), scenario.ecd_ptrs(), icfg);
  injector.spare(&scenario.measurement_vm());
  injector.on_event = [&](const faults::InjectionEvent& ev) {
    harness.events().record(ev.at_ns,
                            ev.is_reboot ? experiments::EventKind::kVmReboot
                                         : experiments::EventKind::kVmFailure,
                            ev.vm, ev.was_gm ? "gm" : "standby");
  };
  injector.start();

  const std::int64_t duration = cli.get_int("duration_h", 4) * 3'600'000'000'000LL;
  harness.run_measured(duration);

  // Locate the interval with the maximum precision and zoom +/- 30 min.
  const auto& series = scenario.probe().series();
  std::int64_t peak_t = 0;
  double peak = -1.0;
  for (const auto& p : series.points()) {
    if (p.value > peak) {
      peak = p.value;
      peak_t = p.t_ns;
    }
  }
  const std::int64_t lo = std::max<std::int64_t>(peak_t - 30_min, 0);
  const std::int64_t hi = peak_t + 30_min;

  std::printf("\nmaximum measured precision: %.0f ns at %s (paper: 10080 ns at 06:45:49)\n",
              peak, util::hms(peak_t).c_str());
  experiments::print_event_timeline(harness.events(), series, lo, hi, cal.bound.pi_ns,
                                    cal.gamma_ns);

  experiments::print_comparison_table(
      "Fig. 5 event inventory (zoom window)",
      {
          {"VM failures (triangles)", "several/h",
           util::format("%zu", harness.events().window(lo, hi).size() -
                                   harness.events().count(experiments::EventKind::kAppFault)),
           "incl. reboots"},
          {"takeovers (stars)", "follow GM failures",
           util::format("%zu", harness.events().count(experiments::EventKind::kTakeover)),
           "whole run"},
          {"ptp4l app faults (crosses)", "tx_timeout/deadline",
           util::format("%zu", harness.events().count(experiments::EventKind::kAppFault)),
           "whole run"},
          {"peak within Pi+gamma", "yes (10.08us < 12.28us)",
           (peak - cal.gamma_ns) <= cal.bound.pi_ns ? "yes" : "NO",
           util::format("Pi+gamma=%.0f ns", cal.bound.pi_ns + cal.gamma_ns)},
      });

  experiments::dump_events_csv(harness.events(), cli.get_string("csv", "fig5_events.csv"));
  std::printf("\nevents CSV: %s\n", cli.get_string("csv", "fig5_events.csv").c_str());

  auto manifest =
      bench::make_manifest("fig5_zoom_events", cfg, 1, 1, scenario.metrics_snapshot());
  manifest.extra["peak_ns"] = util::format("%.1f", peak);
  manifest.extra["takeovers"] =
      std::to_string(harness.events().count(experiments::EventKind::kTakeover));
  bench::write_manifest_from_cli(cli, manifest);
  return 0;
}
