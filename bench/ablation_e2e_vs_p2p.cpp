// Ablation: IEEE 1588 end-to-end delay (PTP-unaware switch) vs IEEE
// 802.1AS peer-to-peer delay with time-aware bridges.
//
// Why the paper's substrate is gPTP: a time-aware bridge timestamps every
// Sync at ingress and egress and writes its residence time into the
// correction field, so switch queueing jitter cancels. The family's
// default E2E mechanism through a PTP-unaware switch has no such
// correction -- the queueing jitter of every hop lands in the slave's
// offsets and its servo noise.
#include <cmath>

#include "bench_common.hpp"
#include "gptp/bridge.hpp"
#include "gptp/stack.hpp"
#include "net/link.hpp"
#include "net/switch.hpp"
#include "util/stats.hpp"

using namespace tsn;
using namespace tsn::sim::literals;

namespace {

struct Outcome {
  double offset_std_ns = 0;
  double disagreement_ns = 0;
  obs::MetricsSnapshot metrics;
};

time::PhcModel phc(double drift) {
  time::PhcModel m;
  m.oscillator.initial_drift_ppm = drift;
  m.timestamp_jitter_ns = 8.0;
  return m;
}

Outcome run(bool p2p_with_bridge, double residence_jitter, std::int64_t duration) {
  sim::Simulation sim(7);
  obs::Observability obs; // stack-level bench: no Scenario, so own the bundle
  net::SwitchConfig scfg;
  scfg.port_count = 3;
  scfg.residence_base_ns = 2'000;
  scfg.residence_jitter_ns = residence_jitter;
  net::Switch sw(sim, scfg, "sw");
  net::Nic gm_nic(sim, phc(2.0), net::MacAddress::from_u64(0xA), "gm");
  net::Nic slave_nic(sim, phc(-2.0), net::MacAddress::from_u64(0xB), "sl");
  net::Link lg(sim, gm_nic.port(), sw.port(0), {}, "g");
  net::Link ls(sim, slave_nic.port(), sw.port(1), {}, "s");
  gptp::PtpStack stack_g(sim, gm_nic, {}, "G");
  gptp::PtpStack stack_s(sim, slave_nic, {}, "S");

  std::unique_ptr<gptp::TimeAwareBridge> bridge;
  gptp::InstanceConfig gm_cfg, slave_cfg;
  gm_cfg.role = gptp::PortRole::kMaster;
  slave_cfg.role = gptp::PortRole::kSlave;
  if (p2p_with_bridge) {
    gptp::BridgeConfig bcfg;
    bcfg.domains = {{0, 0, {1}, false}};
    bridge = std::make_unique<gptp::TimeAwareBridge>(sim, sw, bcfg, "br");
  } else {
    gm_cfg.delay_mechanism = gptp::DelayMechanism::kE2E;
    slave_cfg.delay_mechanism = gptp::DelayMechanism::kE2E;
  }
  stack_g.add_instance(gm_cfg);
  auto& slave = stack_s.add_instance(slave_cfg);
  slave.enable_local_servo({});

  util::RunningStats offsets;
  util::RunningStats disagreement;
  stack_g.start();
  stack_s.start();
  if (bridge) bridge->start();
  sim.run_until(sim::SimTime(20_s)); // settle
  sim.every(sim.now(), 250'000'000, [&](sim::SimTime) {
    disagreement.add(
        std::abs(static_cast<double>(gm_nic.phc().read() - slave_nic.phc().read())));
  });
  slave.set_offset_callback([&](const gptp::MasterOffsetSample& s) {
    offsets.add(s.offset_ns);
    // keep disciplining manually since the callback replaced the servo sink
  });
  // Re-enable servo behaviour through the callback:
  gptp::PiServo servo;
  servo.attach_obs(obs.context(), "slave.servo");
  slave.set_offset_callback([&](const gptp::MasterOffsetSample& s) {
    offsets.add(s.offset_ns);
    const auto r = servo.sample(static_cast<std::int64_t>(s.offset_ns), s.local_rx_ts);
    if (r.state == gptp::PiServo::State::kJump) {
      slave_nic.phc().step(-static_cast<std::int64_t>(s.offset_ns));
    }
    slave_nic.phc().adj_frequency(r.freq_ppb);
  });
  sim.run_until(sim.now() + duration);

  obs.metrics.gauge("sim.events_executed")
      .set(static_cast<double>(sim.events_executed()));
  return {offsets.stddev(), disagreement.mean(), obs.metrics.snapshot()};
}

} // namespace

int main(int argc, char** argv) {
  const auto cli = tsn::bench::parse_cli(argc, argv);
  tsn::bench::banner("Ablation: 1588 E2E (dumb switch) vs 802.1AS P2P (bridge)",
                     "why the architecture builds on gPTP");

  const std::int64_t duration = cli.get_int("duration_min", 5) * 60'000'000'000LL;
  std::vector<experiments::ComparisonRow> rows;
  std::vector<obs::MetricsSnapshot> metric_parts;
  double e2e_std = 0, p2p_std = 0;
  for (double jitter : {0.0, 100.0, 400.0}) {
    const Outcome e2e = run(false, jitter, duration);
    const Outcome p2p = run(true, jitter, duration);
    metric_parts.push_back(e2e.metrics);
    metric_parts.push_back(p2p.metrics);
    if (jitter == 400.0) {
      e2e_std = e2e.offset_std_ns;
      p2p_std = p2p.offset_std_ns;
    }
    rows.push_back({util::format("residence jitter %.0f ns", jitter),
                    util::format("P2P: std=%.0fns |err|=%.0fns", p2p.offset_std_ns,
                                 p2p.disagreement_ns),
                    util::format("E2E: std=%.0fns |err|=%.0fns", e2e.offset_std_ns,
                                 e2e.disagreement_ns),
                    ""});
  }
  experiments::print_comparison_table("Offset noise and clock error vs switch queueing jitter",
                                      rows);
  const bool ok = e2e_std > 5.0 * p2p_std;
  std::printf("\nexpected shape (P2P bridge correction cancels queueing jitter, E2E does\n"
              "not; at 400 ns jitter E2E noise is %.0fx P2P): %s\n",
              e2e_std / std::max(p2p_std, 1.0), ok ? "OK" : "DIFFERENT");

  // No ScenarioConfig here (raw gPTP stacks), so assemble the manifest by hand.
  obs::RunManifest manifest;
  manifest.tool = "ablation_e2e_vs_p2p";
  manifest.seed = 7;
  manifest.replicas = metric_parts.size();
  manifest.threads = 1;
  manifest.scenario["residence_jitter_ns"] = "0,100,400";
  manifest.scenario["duration_ns"] = std::to_string(duration);
  manifest.metrics = obs::merge_snapshots(metric_parts);
  manifest.extra["e2e_std_ns_j400"] = util::format("%.1f", e2e_std);
  manifest.extra["p2p_std_ns_j400"] = util::format("%.1f", p2p_std);
  tsn::bench::write_manifest_from_cli(cli, manifest);
  return ok ? 0 : 1;
}
