// Fig. 3a: the 1 h cyber-resilience experiment with IDENTICAL Linux kernel
// versions on all virtual GMs.
//
// The attacker roots virtual GM c41 at 00:21:42 and c11 at 00:31:52 (both
// run the exploitable kernel 4.19.1), replacing their ptp4l with malicious
// instances whose preciseOriginTimestamps are shifted by -24 us. The FTA
// masks the first compromised GM; the second defeats f = 1 and the
// measured precision must violate the upper bound -- the nodes lose
// synchronization.
//
// seeds=N repeats the attack over N jitter/drift draws through the
// SweepRunner (threads= workers); the violation must occur in EVERY
// replica for the exit code to stay 0.
#include "bench_common.hpp"
#include "faults/attacker.hpp"

using namespace tsn;
using namespace tsn::sim::literals;

namespace {

struct Replica {
  util::TimeSeries series;
  experiments::ExperimentHarness::Calibration cal;
  obs::MetricsSnapshot metrics;
  std::size_t exploits = 0;
  double holds = 0;
};

} // namespace

int main(int argc, char** argv) {
  const auto cli = bench::parse_cli(argc, argv);
  bench::banner("Cyber-resilience attack, identical kernels",
                "Fig. 3a (DSN-S'23 sec. III-B)");

  const std::int64_t duration = cli.get_int("duration_min", 60) * 60'000'000'000LL;
  const auto run_replica = [&](const experiments::ScenarioConfig& base, std::size_t) -> Replica {
    experiments::ScenarioConfig cfg = base;
    cfg.gm_kernels = {"4.19.1", "4.19.1", "4.19.1", "4.19.1"};
    experiments::Scenario scenario(cfg);
    experiments::ExperimentHarness harness(scenario);
    harness.bring_up();
    const auto cal = harness.calibrate();

    const std::int64_t t0 = scenario.sim().now().ns();
    faults::Attacker attacker(scenario.sim(), faults::KernelVulnDb::with_defaults());
    attacker.add_step({t0 + 21_min + 42_s, &scenario.gm_vm(3)}); // c41
    attacker.add_step({t0 + 31_min + 52_s, &scenario.gm_vm(0)}); // c11
    attacker.on_attempt = [&](const faults::AttackResult& r) {
      harness.events().record(scenario.sim().now().ns(), experiments::EventKind::kAttack,
                              r.step.target->name(), r.success ? "root obtained" : "failed");
    };
    attacker.start();

    harness.run_measured(duration);

    Replica out;
    out.series = scenario.probe().series();
    out.cal = cal;
    out.exploits = attacker.successful_exploits();
    out.holds = experiments::bound_holding_fraction(out.series, cal.bound.pi_ns, cal.gamma_ns);
    out.metrics = scenario.metrics_snapshot();
    return out;
  };

  const auto base_cfg = bench::scenario_from_cli(cli);
  bench::require_serial(base_cfg, "the attacker schedule mutates GM VMs from the serial loop");
  sweep::SweepRunner runner(bench::sweep_options_from_cli(cli));
  const auto results =
      runner.run(sweep::seed_sweep(base_cfg, bench::seeds_from_cli(cli)), run_replica);

  experiments::print_calibration(results.front().cal, 4120, 9188, 12'636, 1313);

  std::vector<util::TimeSeries> series;
  std::vector<obs::MetricsSnapshot> metric_parts;
  std::size_t exploits = 0;
  std::size_t violated_replicas = 0;
  for (const auto& r : results) {
    series.push_back(r.series);
    metric_parts.push_back(r.metrics);
    exploits += r.exploits;
    if (r.holds < 1.0) ++violated_replicas;
  }
  const auto merged = sweep::merge_series(series);
  if (results.size() > 1) {
    std::printf("\n%zu seed replicas on %zu threads; bound violated in %zu/%zu\n",
                results.size(), runner.threads(), violated_replicas, results.size());
  }

  const auto& cal = results.front().cal;
  experiments::print_precision_series(merged, cal.bound.pi_ns, cal.gamma_ns,
                                      cli.get_int("bucket_s", 120) * 1'000'000'000LL);

  const bool all_violated = violated_replicas == results.size();
  const auto st = merged.stats();
  experiments::print_comparison_table(
      "Fig. 3a outcome",
      {
          {"exploits succeeded", util::format("%zu (both GMs rooted)", 2 * results.size()),
           util::format("%zu", exploits), "identical kernel 4.19.1"},
          {"1st attack (c41) masked", "yes", "yes", "FTA tolerates f=1"},
          {"bound violated after 2nd attack", "yes", all_violated ? "yes" : "NO",
           "nodes lose synchronization"},
          {"max precision", "~1e16 ns", util::format("%.3g ns", st.max()),
           "explodes by orders of magnitude"},
      });

  experiments::dump_series_csv(merged, cli.get_string("csv", "fig3a_series.csv"));
  std::printf("\nseries CSV: %s\n", cli.get_string("csv", "fig3a_series.csv").c_str());

  auto manifest = bench::make_manifest("fig3a_attack_identical", base_cfg, results.size(),
                                       runner.threads(), sweep::merge_metrics(metric_parts));
  manifest.extra["exploits"] = std::to_string(exploits);
  manifest.extra["violated_replicas"] = std::to_string(violated_replicas);
  bench::write_manifest_from_cli(cli, manifest);
  return all_violated ? 0 : 1; // the figure's point is the violation
}
