// Fig. 3a: the 1 h cyber-resilience experiment with IDENTICAL Linux kernel
// versions on all virtual GMs.
//
// The attacker roots virtual GM c41 at 00:21:42 and c11 at 00:31:52 (both
// run the exploitable kernel 4.19.1), replacing their ptp4l with malicious
// instances whose preciseOriginTimestamps are shifted by -24 us. The FTA
// masks the first compromised GM; the second defeats f = 1 and the
// measured precision must violate the upper bound -- the nodes lose
// synchronization.
#include "bench_common.hpp"
#include "faults/attacker.hpp"

using namespace tsn;
using namespace tsn::sim::literals;

int main(int argc, char** argv) {
  const auto cli = bench::parse_cli(argc, argv);
  bench::banner("Cyber-resilience attack, identical kernels",
                "Fig. 3a (DSN-S'23 sec. III-B)");

  experiments::ScenarioConfig cfg = bench::scenario_from_cli(cli);
  cfg.gm_kernels = {"4.19.1", "4.19.1", "4.19.1", "4.19.1"};
  experiments::Scenario scenario(cfg);
  experiments::ExperimentHarness harness(scenario);
  harness.bring_up();
  const auto cal = harness.calibrate();
  experiments::print_calibration(cal, 4120, 9188, 12'636, 1313);

  const std::int64_t t0 = scenario.sim().now().ns();
  faults::Attacker attacker(scenario.sim(), faults::KernelVulnDb::with_defaults());
  attacker.add_step({t0 + 21_min + 42_s, &scenario.gm_vm(3)}); // c41
  attacker.add_step({t0 + 31_min + 52_s, &scenario.gm_vm(0)}); // c11
  attacker.on_attempt = [&](const faults::AttackResult& r) {
    harness.events().record(scenario.sim().now().ns(), experiments::EventKind::kAttack,
                            r.step.target->name(), r.success ? "root obtained" : "failed");
  };
  attacker.start();

  const std::int64_t duration = cli.get_int("duration_min", 60) * 60'000'000'000LL;
  harness.run_measured(duration);

  experiments::print_precision_series(scenario.probe().series(), cal.bound.pi_ns, cal.gamma_ns,
                                      cli.get_int("bucket_s", 120) * 1'000'000'000LL);

  const double holds = experiments::bound_holding_fraction(scenario.probe().series(),
                                                           cal.bound.pi_ns, cal.gamma_ns);
  const auto st = scenario.probe().series().stats();
  experiments::print_comparison_table(
      "Fig. 3a outcome",
      {
          {"exploits succeeded", "2 (both GMs rooted)",
           util::format("%zu", attacker.successful_exploits()), "identical kernel 4.19.1"},
          {"1st attack (c41) masked", "yes", "yes", "FTA tolerates f=1"},
          {"bound violated after 2nd attack", "yes", holds < 1.0 ? "yes" : "NO",
           "nodes lose synchronization"},
          {"max precision", "~1e16 ns", util::format("%.3g ns", st.max()),
           "explodes by orders of magnitude"},
      });

  experiments::dump_series_csv(scenario.probe().series(),
                               cli.get_string("csv", "fig3a_series.csv"));
  std::printf("\nseries CSV: %s\n", cli.get_string("csv", "fig3a_series.csv").c_str());
  return holds < 1.0 ? 0 : 1; // the figure's point is the violation
}
