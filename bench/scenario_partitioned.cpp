// Partitioned-scaling benchmark: one 64-ECD scenario executed serially
// (partitions = 0, the legacy single event loop) and on the
// conservative-parallel runtime with increasing worker shard counts.
// items_per_second is simulated events per wall second -- the speedup
// claim of the partitioned runtime is the ratio of a partitions=N row to
// the partitions=0 row on the same machine.
//
// Not part of BENCH_micro.json: the result depends on core count, so a
// committed baseline would be meaningless across machines. CI computes
// the speedup ratio from a fresh run instead (see .github/workflows).
#include <benchmark/benchmark.h>

#include "experiments/scenario.hpp"

namespace {

using namespace tsn;

void BM_ScenarioPartitioned(benchmark::State& state) {
  experiments::ScenarioConfig cfg;
  cfg.seed = 7;
  cfg.num_ecds = static_cast<std::size_t>(state.range(0));
  cfg.topology = experiments::TopologyKind::kRing;
  cfg.num_domains = 8;
  cfg.partitions = static_cast<std::size_t>(state.range(1));

  experiments::Scenario scenario(cfg);
  scenario.start();
  // Warm up past the boot burst so iterations measure steady-state
  // protocol traffic (sync, monitors, startup-phase aggregation).
  scenario.run_to(scenario.now_ns() + 500'000'000LL);

  const std::uint64_t events_before = scenario.events_executed();
  for (auto _ : state) {
    scenario.run_to(scenario.now_ns() + 250'000'000LL);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(scenario.events_executed() - events_before));
  state.counters["shards"] = static_cast<double>(cfg.partitions);
}

// partitions=0 is the serial baseline; 1..8 scale the shard count over
// the same 64-region world (results byte-identical for every value >= 1).
BENCHMARK(BM_ScenarioPartitioned)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({64, 4})
    ->Args({64, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

} // namespace

BENCHMARK_MAIN();
