// Section III-A3 / III-B / III-C scalars: the measured path latencies and
// the derived precision bounds of both experiments.
//
//   experiment 1 (cyber-resilience): dmin 4120 ns, dmax 9188 ns,
//       E 5068 ns, Pi 12.636 us, gamma 1313 ns
//   experiment 2 (fault injection):  Pi 11.42 us, gamma 856 ns
//
// The paper notes the difference between the experiments "stems from
// varying minimum and maximum network latency measurements"; we reproduce
// that by calibrating with two different seeds (two cabling/jitter draws).
// Both calibrations run through the SweepRunner (threads= knob) and print
// in fixed order.
#include "bench_common.hpp"

using namespace tsn;

int main(int argc, char** argv) {
  const auto cli = bench::parse_cli(argc, argv);
  bench::banner("Path latency calibration and precision bounds",
                "Sec. III-A3 scalars for both experiments");

  struct PaperRow {
    const char* name;
    std::uint64_t seed;
    double dmin, dmax, pi, gamma;
  };
  const PaperRow rows[] = {
      {"experiment 1 (attack)", 1, 4120, 9188, 12'636, 1313},
      {"experiment 2 (fault injection)", 2, 3520, 7688, 11'420, 856},
  };

  std::vector<experiments::ScenarioConfig> configs;
  for (const auto& row : rows) {
    experiments::ScenarioConfig cfg = bench::scenario_from_cli(cli);
    cfg.seed = row.seed;
    configs.push_back(cfg);
  }

  struct Replica {
    experiments::ExperimentHarness::Calibration cal;
    obs::MetricsSnapshot metrics;
  };
  sweep::SweepRunner runner(bench::sweep_options_from_cli(cli));
  const auto results = runner.run(
      configs, [&](const experiments::ScenarioConfig& cfg, std::size_t) -> Replica {
        experiments::Scenario scenario(cfg);
        experiments::ExperimentHarness harness(scenario);
        harness.bring_up();
        const auto cal = harness.calibrate(static_cast<int>(cli.get_int("rounds", 60)));
        return {cal, scenario.metrics_snapshot()};
      });

  int rc = 0;
  std::vector<obs::MetricsSnapshot> metric_parts;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& row = rows[i];
    metric_parts.push_back(results[i].metrics);
    std::printf("\n--- %s (seed %llu)\n", row.name, (unsigned long long)row.seed);
    experiments::print_calibration(results[i].cal, row.dmin, row.dmax, row.pi, row.gamma);

    // Sanity: same order of magnitude as the testbed.
    if (results[i].cal.bound.pi_ns < 6'000 || results[i].cal.bound.pi_ns > 25'000) rc = 1;
  }

  std::printf("\nNote: paper experiment 2 reports only Pi and gamma; its dmin/dmax\n"
              "columns above are back-derived from Pi = 2(E + 1.25us).\n");

  auto manifest = bench::make_manifest("table_bounds", configs.front(), results.size(),
                                       runner.threads(), sweep::merge_metrics(metric_parts));
  for (std::size_t i = 0; i < results.size(); ++i) {
    manifest.extra[util::format("pi_ns_exp%zu", i + 1)] =
        util::format("%.1f", results[i].cal.bound.pi_ns);
    manifest.extra[util::format("gamma_ns_exp%zu", i + 1)] =
        util::format("%.1f", results[i].cal.gamma_ns);
  }
  bench::write_manifest_from_cli(cli, manifest);
  return rc;
}
