// Section III-A3 / III-B / III-C scalars: the measured path latencies and
// the derived precision bounds of both experiments.
//
//   experiment 1 (cyber-resilience): dmin 4120 ns, dmax 9188 ns,
//       E 5068 ns, Pi 12.636 us, gamma 1313 ns
//   experiment 2 (fault injection):  Pi 11.42 us, gamma 856 ns
//
// The paper notes the difference between the experiments "stems from
// varying minimum and maximum network latency measurements"; we reproduce
// that by calibrating with two different seeds (two cabling/jitter draws).
// Both calibrations run through the SweepRunner (threads= knob) and print
// in fixed order.
#include "bench_common.hpp"

using namespace tsn;

int main(int argc, char** argv) {
  const auto cli = bench::parse_cli(argc, argv);
  bench::banner("Path latency calibration and precision bounds",
                "Sec. III-A3 scalars for both experiments");

  struct PaperRow {
    const char* name;
    std::uint64_t seed;
    double dmin, dmax, pi, gamma;
  };
  const PaperRow rows[] = {
      {"experiment 1 (attack)", 1, 4120, 9188, 12'636, 1313},
      {"experiment 2 (fault injection)", 2, 3520, 7688, 11'420, 856},
  };

  std::vector<experiments::ScenarioConfig> configs;
  for (const auto& row : rows) {
    experiments::ScenarioConfig cfg = bench::scenario_from_cli(cli);
    cfg.seed = row.seed;
    configs.push_back(cfg);
  }

  sweep::SweepRunner runner(bench::sweep_options_from_cli(cli));
  const auto cals = runner.run(
      configs, [&](const experiments::ScenarioConfig& cfg, std::size_t) {
        experiments::Scenario scenario(cfg);
        experiments::ExperimentHarness harness(scenario);
        harness.bring_up();
        return harness.calibrate(static_cast<int>(cli.get_int("rounds", 60)));
      });

  int rc = 0;
  for (std::size_t i = 0; i < cals.size(); ++i) {
    const auto& row = rows[i];
    std::printf("\n--- %s (seed %llu)\n", row.name, (unsigned long long)row.seed);
    experiments::print_calibration(cals[i], row.dmin, row.dmax, row.pi, row.gamma);

    // Sanity: same order of magnitude as the testbed.
    if (cals[i].bound.pi_ns < 6'000 || cals[i].bound.pi_ns > 25'000) rc = 1;
  }

  std::printf("\nNote: paper experiment 2 reports only Pi and gamma; its dmin/dmax\n"
              "columns above are back-derived from Pi = 2(E + 1.25us).\n");
  return rc;
}
