#include "alloc_hook.hpp"

#include <cstdlib>
#include <new>

namespace tsn::bench {
namespace {
// Plain (non-atomic) on purpose: the bench binary is single-threaded and
// the counter sits on the hottest path we are measuring.
std::uint64_t g_allocs = 0;
} // namespace

bool alloc_hook_active() {
#ifdef TSN_BENCH_ALLOC_HOOK_DISABLED
  return false;
#else
  return true;
#endif
}

std::uint64_t alloc_count() { return g_allocs; }

} // namespace tsn::bench

#ifndef TSN_BENCH_ALLOC_HOOK_DISABLED

namespace {
void* counted_alloc(std::size_t n) {
  ++tsn::bench::g_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
} // namespace

// Replaceable global allocation functions (the sized/aligned variants all
// funnel through these two on this toolchain, but are provided explicitly
// so the count stays exact whatever the compiler emits).
void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t) { return counted_alloc(n); }
void* operator new[](std::size_t n, std::align_val_t) { return counted_alloc(n); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

#endif // TSN_BENCH_ALLOC_HOOK_DISABLED
